#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/swarm.hpp"
#include "exp/replication.hpp"
#include "mac/medium.hpp"
#include "mac/radio.hpp"
#include "mac/spatial.hpp"
#include "net/packet.hpp"
#include "phy/channel.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace cocoa::mac {
namespace {

using cocoa::energy::PowerProfile;
using cocoa::geom::Vec2;
using cocoa::net::Packet;
using cocoa::net::Port;
using cocoa::net::TestPayload;
using cocoa::sim::Duration;
using cocoa::sim::Simulator;
using cocoa::sim::TimePoint;
using spatial::CellTree;

// --- CellTree unit behaviour ------------------------------------------------

TEST(CellTree, InsertQueryRemove) {
    CellTree tree(10.0);
    EXPECT_EQ(tree.size(), 0u);
    tree.insert(0, {1.0, 1.0});
    tree.insert(1, {5.0, 5.0});
    tree.insert(2, {25.0, 25.0});  // two cells away: outside a r=8 query at origin
    EXPECT_EQ(tree.size(), 3u);
    EXPECT_TRUE(tree.contains(1));
    EXPECT_FALSE(tree.contains(7));

    std::vector<std::uint32_t> hits;
    tree.for_each_in_radius({0.0, 0.0}, 8.0, [&](std::uint32_t id, Vec2 pos) {
        if (geom::distance({0.0, 0.0}, pos) <= 8.0) hits.push_back(id);
    });
    std::sort(hits.begin(), hits.end());
    EXPECT_EQ(hits, (std::vector<std::uint32_t>{0, 1}));

    tree.remove(1);
    EXPECT_FALSE(tree.contains(1));
    EXPECT_EQ(tree.size(), 2u);
    tree.remove(1);  // double-remove is a no-op
    EXPECT_EQ(tree.size(), 2u);
}

TEST(CellTree, UpdateMigratesOnlyOnBoundaryCrossing) {
    CellTree tree(10.0);
    tree.insert(0, {1.0, 1.0});
    tree.update(0, {2.0, 2.0});  // same cell
    EXPECT_EQ(tree.stats().in_cell_updates, 1u);
    EXPECT_EQ(tree.stats().migrations, 0u);
    EXPECT_EQ(tree.cached_position(0), (Vec2{2.0, 2.0}));

    tree.update(0, {15.0, 2.0});  // crosses a cell boundary
    EXPECT_EQ(tree.stats().migrations, 1u);
    EXPECT_EQ(tree.cached_position(0), (Vec2{15.0, 2.0}));

    tree.update(9, {0.0, 0.0});  // absent id: no-op (detached radios keep moving)
    EXPECT_FALSE(tree.contains(9));
}

TEST(CellTree, EmptyTilesAreReclaimed) {
    CellTree tree(10.0);
    // 8x8 cells per tile and cell side 10: these are three distinct tiles.
    tree.insert(0, {5.0, 5.0});
    tree.insert(1, {500.0, 5.0});
    tree.insert(2, {5.0, 500.0});
    EXPECT_EQ(tree.tile_count(), 3u);
    // Walk node 1 far away: its old tile must not linger in the sparse hash.
    tree.update(1, {900.0, 900.0});
    EXPECT_EQ(tree.tile_count(), 3u);
    tree.remove(2);
    EXPECT_EQ(tree.tile_count(), 2u);
    tree.remove(0);
    tree.remove(1);
    EXPECT_EQ(tree.tile_count(), 0u);
    EXPECT_EQ(tree.size(), 0u);
}

/// Randomized equivalence against a brute-force position map: a long mixed
/// stream of insert / remove / boundary-crossing updates / power-style
/// detach+reattach, with every query checked id-for-id. Negative coordinates
/// included on purpose (arithmetic-shift tile math).
TEST(CellTree, RandomizedEquivalenceVsBruteForce) {
    const double cell = 37.0;
    CellTree tree(cell);
    std::map<std::uint32_t, Vec2> oracle;  // id -> live position
    Simulator sim(1234);
    sim::RandomStream rng = sim.rng().stream("spatial.fuzz");

    const auto random_pos = [&rng] {
        return Vec2{rng.uniform(-500.0, 500.0), rng.uniform(-500.0, 500.0)};
    };

    constexpr std::uint32_t kIds = 200;
    for (int step = 0; step < 5000; ++step) {
        const auto id = static_cast<std::uint32_t>(rng.uniform_int(0, kIds - 1));
        switch (rng.uniform_int(0, 3)) {
            case 0:  // (re)insert — models attach and power_on
                if (oracle.find(id) == oracle.end()) {
                    const Vec2 p = random_pos();
                    tree.insert(id, p);
                    oracle[id] = p;
                }
                break;
            case 1:  // remove — models power_off / outage detach
                tree.remove(id);
                oracle.erase(id);
                break;
            case 2: {  // move (both small in-cell steps and wild jumps)
                if (oracle.find(id) != oracle.end()) {
                    Vec2 p = oracle[id];
                    if (rng.chance(0.5)) {
                        p.x += rng.uniform(-3.0, 3.0);
                        p.y += rng.uniform(-3.0, 3.0);
                    } else {
                        p = random_pos();
                    }
                    tree.update(id, p);
                    oracle[id] = p;
                }
                break;
            }
            default: {  // query with an exact radius filter
                const Vec2 center = random_pos();
                const double radius = rng.uniform(0.0, cell);
                std::vector<std::uint32_t> got;
                tree.for_each_in_radius(center, radius, [&](std::uint32_t i, Vec2 p) {
                    if (geom::distance(center, p) <= radius) got.push_back(i);
                });
                std::sort(got.begin(), got.end());
                std::vector<std::uint32_t> want;
                for (const auto& [i, p] : oracle) {
                    if (geom::distance(center, p) <= radius) want.push_back(i);
                }
                ASSERT_EQ(got, want) << "step " << step;
                break;
            }
        }
        ASSERT_EQ(tree.size(), oracle.size());
    }
    EXPECT_GT(tree.stats().migrations, 0u);
    EXPECT_GT(tree.stats().in_cell_updates, 0u);
    EXPECT_EQ(tree.stats().full_refreshes, 0u);
}

// --- Medium integration -----------------------------------------------------

Packet test_packet(std::uint64_t value = 0) {
    Packet p;
    p.port = Port::Test;
    p.payload_bytes = 24;
    p.payload = TestPayload{value};
    return p;
}

phy::Channel quiet_channel() {
    phy::ChannelConfig c;
    c.shadowing_sigma_near_db = 0.0;
    c.shadowing_sigma_far_db = 0.0;
    c.fade_mean_far_db = 0.0;
    return phy::Channel{c};
}

/// A medium plus statically-placed radios, parameterizable by index backend.
class SpatialMediumFixture : public ::testing::Test {
  protected:
    SpatialMediumFixture() : sim_(99), channel_(quiet_channel()) {}

    Medium& medium(MediumIndex index) {
        if (!medium_) {
            MediumConfig mc;
            mc.index = index;
            medium_.emplace(sim_, channel_, mc);
        }
        return *medium_;
    }

    Radio& add_radio(Vec2 position) {
        const auto id = static_cast<net::NodeId>(radios_.size());
        radios_.push_back(std::make_unique<Radio>(
            sim_, *medium_, id, [position] { return position; },
            PowerProfile::wavelan(), sim_.rng().stream("backoff", id)));
        return *radios_.back();
    }

    Simulator sim_;
    phy::Channel channel_;
    std::optional<Medium> medium_;
    std::vector<std::unique_ptr<Radio>> radios_;
};

/// Powered-off and in-outage radios cost the fan-out nothing (they are not
/// visited, draw no RSSI, and never count as missed_asleep), while ordinary
/// sleepers stay visible to propagation — under both index backends.
void check_detached_radios_invisible(MediumIndex index) {
    SCOPED_TRACE(index == MediumIndex::Hierarchical ? "hier" : "flat");
    Simulator sim(99);
    const phy::Channel channel = quiet_channel();
    MediumConfig mc;
    mc.index = index;
    Medium medium(sim, channel, mc);
    std::vector<std::unique_ptr<Radio>> radios;
    const auto add = [&](Vec2 position) -> Radio& {
        const auto id = static_cast<net::NodeId>(radios.size());
        radios.push_back(std::make_unique<Radio>(
            sim, medium, id, [position] { return position; },
            PowerProfile::wavelan(), sim.rng().stream("backoff", id)));
        return *radios.back();
    };

    Radio& tx = add({0.0, 0.0});
    Radio& off = add({10.0, 0.0});
    Radio& outage = add({0.0, 10.0});
    Radio& sleeper = add({10.0, 10.0});
    Radio& awake = add({20.0, 0.0});
    int delivered = 0;
    awake.set_receive_handler([&](const Packet&, const net::RxInfo&) { ++delivered; });

    sim.schedule_at(TimePoint::from_seconds(1.0), [&] {
        off.power_off();
        outage.begin_outage();
        sleeper.sleep();
        tx.send(test_packet(1));
    });
    sim.run();

    EXPECT_EQ(delivered, 1);
    // Only the sleeper and the awake receiver were visited; the frame
    // was decodable at the sleeper, so exactly one missed_asleep.
    EXPECT_EQ(medium.stats().radios_visited, 2u);
    EXPECT_EQ(medium.stats().radios_culled, 2u);
    EXPECT_EQ(medium.stats().missed_asleep, 1u);
    EXPECT_EQ(off.stats().rx_delivered, 0u);
}

TEST(SpatialMedium, DetachedRadiosAreInvisibleToPropagationHierarchical) {
    check_detached_radios_invisible(MediumIndex::Hierarchical);
}

TEST(SpatialMedium, DetachedRadiosAreInvisibleToPropagationFlat) {
    check_detached_radios_invisible(MediumIndex::FlatHash);
}

/// A radio that comes back (power_on / end_outage) re-enters the index at
/// its current position and receives again.
TEST_F(SpatialMediumFixture, RevivedRadiosReenterTheIndex) {
    medium(MediumIndex::Hierarchical);
    Radio& tx = add_radio({0.0, 0.0});
    Radio& rx = add_radio({15.0, 0.0});
    int delivered = 0;
    rx.set_receive_handler([&](const Packet&, const net::RxInfo&) { ++delivered; });

    sim_.schedule_at(TimePoint::from_seconds(1.0), [&] { rx.power_off(); });
    sim_.schedule_at(TimePoint::from_seconds(2.0), [&] { tx.send(test_packet(1)); });
    sim_.schedule_at(TimePoint::from_seconds(3.0), [&] { rx.power_on(); });
    sim_.schedule_at(TimePoint::from_seconds(4.0), [&] { tx.send(test_packet(2)); });
    // A second power cycle must be idempotent bookkeeping (no double insert).
    sim_.schedule_at(TimePoint::from_seconds(5.0), [&] {
        rx.begin_outage();
        rx.end_outage();
    });
    sim_.schedule_at(TimePoint::from_seconds(6.0), [&] { tx.send(test_packet(3)); });
    sim_.run();

    EXPECT_EQ(delivered, 2);  // frames 2 and 3
    EXPECT_EQ(medium_->index_stats().inserts, 4u);   // 2 attach + 2 revive
    EXPECT_EQ(medium_->index_stats().removes, 2u);   // power_off + outage
}

/// The bulk note_positions_moved() fallback still works under the cell tree:
/// one full refresh, then correct delivery from the new position.
TEST_F(SpatialMediumFixture, BulkInvalidationTriggersExactlyOneRefresh) {
    medium(MediumIndex::Hierarchical);
    auto tx_pos = std::make_shared<Vec2>(Vec2{0.0, 0.0});
    const auto id = static_cast<net::NodeId>(radios_.size());
    radios_.push_back(std::make_unique<Radio>(
        sim_, *medium_, id, [tx_pos] { return *tx_pos; }, PowerProfile::wavelan(),
        sim_.rng().stream("backoff", id)));
    Radio& tx = *radios_.back();
    Radio& rx = add_radio({1000.0, 0.0});  // out of range of the origin
    int delivered = 0;
    rx.set_receive_handler([&](const Packet&, const net::RxInfo&) { ++delivered; });

    sim_.schedule_at(TimePoint::from_seconds(1.0), [&] {
        *tx_pos = {980.0, 0.0};  // teleport next to the receiver
        medium_->note_positions_moved();
        tx.send(test_packet(7));
    });
    sim_.run();

    EXPECT_EQ(delivered, 1);
    EXPECT_EQ(medium_->index_stats().full_refreshes, 1u);
}

/// Duplicate note_position_moved calls within one simulation instant are
/// coalesced: a radio's position changes at most once per instant, so the
/// index does that radio's update work at most once per timestamp (repeated
/// per-tick notes used to pay an in-cell update each, and a whole hash
/// invalidation under the flat oracle).
TEST_F(SpatialMediumFixture, DuplicateSameInstantNotesCoalesce) {
    medium(MediumIndex::Hierarchical);
    auto pos = std::make_shared<Vec2>(Vec2{0.0, 0.0});
    const auto id = static_cast<net::NodeId>(radios_.size());
    radios_.push_back(std::make_unique<Radio>(
        sim_, *medium_, id, [pos] { return *pos; }, PowerProfile::wavelan(),
        sim_.rng().stream("backoff", id)));
    Radio& mover = *radios_.back();
    const auto updates = [this] {
        return medium_->index_stats().in_cell_updates +
               medium_->index_stats().migrations;
    };

    sim_.schedule_at(TimePoint::from_seconds(1.0), [&] {
        *pos = {3.0, 0.0};
        medium_->note_position_moved(mover);
        const auto after_first = updates();
        EXPECT_EQ(after_first, 1u);
        medium_->note_position_moved(mover);  // duplicate at the same instant
        EXPECT_EQ(updates(), after_first);
    });
    sim_.schedule_at(TimePoint::from_seconds(2.0), [&] {
        const auto before = updates();
        *pos = {6.0, 0.0};
        medium_->note_position_moved(mover);  // new instant: real work again
        EXPECT_EQ(updates(), before + 1);
    });
    sim_.run();
    EXPECT_EQ(medium_->index_stats().full_refreshes, 0u);
}

// --- Scenario-level guarantees ----------------------------------------------

core::SwarmConfig small_swarm() {
    core::SwarmConfig c;
    c.nodes = 150;
    c.seed = 11;
    c.duration = Duration::seconds(12.0);
    return c;
}

/// The bugfix contract: steady-state simulation traffic performs zero bulk
/// index work — no cell-tree full refreshes and no flat-hash rebuilds —
/// because mobility flows through the incremental note_position_moved path.
TEST(SwarmScenario, SteadyStateDoesZeroFullRebuilds) {
    core::SwarmConfig config = small_swarm();
    config.medium.index = MediumIndex::Hierarchical;
    const core::SwarmResult r = core::run_swarm(config);
    EXPECT_GT(r.medium_stats.frames_sent, 0u);
    EXPECT_GT(r.frames_delivered, 0u);
    EXPECT_GT(r.index_stats.in_cell_updates + r.index_stats.migrations, 0u);
    EXPECT_EQ(r.index_stats.full_refreshes, 0u);
    EXPECT_EQ(r.flat_index_stats.full_rebuilds, 0u);
}

/// Resting robots cost no index traffic: waypoint pauses produce
/// zero-forward increments, and the mobility ticker skips the note for them
/// — so a pause-heavy swarm performs strictly fewer per-radio updates than
/// robots x ticks (the old behaviour's exact count).
TEST(SwarmScenario, RestingRobotsCostNoIndexTraffic) {
    core::SwarmConfig config = small_swarm();
    config.medium.index = MediumIndex::Hierarchical;
    config.min_speed = config.max_speed = 50.0;  // reach the waypoint fast...
    config.min_pause = config.max_pause = Duration::seconds(5.0);  // ...then rest
    const core::SwarmResult r = core::run_swarm(config);
    const auto ticks = static_cast<std::uint64_t>(r.sim_seconds);  // 1 s mobility tick
    const std::uint64_t updates =
        r.index_stats.in_cell_updates + r.index_stats.migrations;
    EXPECT_GT(updates, 0u);
    EXPECT_LT(updates, static_cast<std::uint64_t>(config.nodes) * ticks);
    EXPECT_EQ(r.index_stats.full_refreshes, 0u);
}

/// The whole swarm scenario is bit-identical across index backends.
TEST(SwarmScenario, BackendsProduceIdenticalRuns) {
    core::SwarmConfig config = small_swarm();
    config.medium.index = MediumIndex::Hierarchical;
    const core::SwarmResult hier = core::run_swarm(config);
    config.medium.index = MediumIndex::FlatHash;
    const core::SwarmResult flat = core::run_swarm(config);

    EXPECT_EQ(hier.executed_events, flat.executed_events);
    EXPECT_EQ(hier.medium_stats.frames_sent, flat.medium_stats.frames_sent);
    EXPECT_EQ(hier.medium_stats.missed_asleep, flat.medium_stats.missed_asleep);
    EXPECT_EQ(hier.medium_stats.radios_visited, flat.medium_stats.radios_visited);
    EXPECT_EQ(hier.frames_delivered, flat.frames_delivered);
    // And the backends really were different structures.
    EXPECT_GT(hier.index_stats.in_cell_updates + hier.index_stats.migrations, 0u);
    EXPECT_EQ(hier.flat_index_stats.full_rebuilds, 0u);
    EXPECT_GT(flat.flat_index_stats.full_rebuilds, 0u);
    EXPECT_EQ(flat.index_stats.queries, 0u);
}

/// fig7-shaped (scaled-down) CoCoA runs: every registered counter is
/// identical between the hierarchical and flat mediums, at 1 and 4 worker
/// threads — the in-process version of CI's whole-binary oracle gate.
TEST(SwarmScenario, CocoaCountersIdenticalAcrossBackendsAndThreads) {
    core::ScenarioConfig config;
    config.seed = 7;
    config.num_robots = 12;
    config.num_anchors = 6;
    config.area_side_m = 120.0;
    config.duration = sim::Duration::seconds(90.0);
    config.period = sim::Duration::seconds(20.0);
    config.window = sim::Duration::seconds(3.0);

    exp::ReplicationOptions opt;
    opt.n_reps = 2;

    std::map<std::string, std::uint64_t> reference;
    bool first = true;
    for (MediumIndex index : {MediumIndex::Hierarchical, MediumIndex::FlatHash}) {
        for (int threads : {1, 4}) {
            core::ScenarioConfig c = config;
            c.medium.index = index;
            opt.n_threads = threads;
            const exp::ReplicationSet set = exp::run_replications(c, opt);
            ASSERT_FALSE(set.counter_totals.empty());
            if (first) {
                reference = set.counter_totals;
                first = false;
            } else {
                // Identical name sets AND identical values: a backend that
                // registered extra counters would break CI's --counters diff.
                EXPECT_EQ(set.counter_totals, reference)
                    << (index == MediumIndex::Hierarchical ? "hier" : "flat")
                    << " @" << threads << " threads";
            }
        }
    }
}

}  // namespace
}  // namespace cocoa::mac
