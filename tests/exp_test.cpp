// Tests for the parallel replication engine (src/exp): the determinism
// contract (bit-identical results at any thread count, replications
// independent of each other), the aggregation maths (95% CI against
// hand-computed values), and the thread pool underneath.

#include <atomic>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "core/bayes_grid.hpp"
#include "exp/replication.hpp"
#include "exp/thread_pool.hpp"
#include "sim/random.hpp"

namespace cocoa {
namespace {

/// A deliberately small scenario so the suite stays fast: the determinism
/// contract does not depend on scale.
core::ScenarioConfig tiny_config() {
    core::ScenarioConfig c;
    c.seed = 7;
    c.num_robots = 10;
    c.num_anchors = 5;
    c.area_side_m = 100.0;
    c.duration = sim::Duration::seconds(90.0);
    c.period = sim::Duration::seconds(20.0);
    c.window = sim::Duration::seconds(3.0);
    return c;
}

/// Field-wise exact comparison of the deterministic parts of a record
/// (everything but wall_seconds, which measures the host machine).
void expect_records_identical(const exp::ReplicationRecord& a,
                              const exp::ReplicationRecord& b) {
    EXPECT_EQ(a.index, b.index);
    EXPECT_EQ(a.seed, b.seed);
    // Bit-exact, not approximate: the engine promises byte-identical output
    // tables for any thread count.
    EXPECT_EQ(std::memcmp(&a.avg_error_m, &b.avg_error_m, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&a.steady_error_m, &b.steady_error_m, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&a.total_energy_kj, &b.total_energy_kj, sizeof(double)), 0);
    EXPECT_EQ(a.executed_events, b.executed_events);
}

TEST(ReplicationEngine, ByteIdenticalAcrossThreadCounts) {
    const core::ScenarioConfig config = tiny_config();
    exp::ReplicationOptions opt;
    opt.n_reps = 5;

    opt.n_threads = 1;
    const exp::ReplicationSet serial = exp::run_replications(config, opt);
    ASSERT_EQ(serial.records.size(), 5u);

    for (const int threads : {2, 8}) {
        opt.n_threads = threads;
        const exp::ReplicationSet parallel = exp::run_replications(config, opt);
        ASSERT_EQ(parallel.records.size(), serial.records.size());
        for (std::size_t i = 0; i < serial.records.size(); ++i) {
            expect_records_identical(serial.records[i], parallel.records[i]);
        }
        // Aggregates are folded in replication order, so they match to the
        // last bit too.
        EXPECT_EQ(serial.avg_error.mean(), parallel.avg_error.mean());
        EXPECT_EQ(serial.avg_error.stddev(), parallel.avg_error.stddev());
        EXPECT_EQ(serial.steady_error.mean(), parallel.steady_error.mean());
        EXPECT_EQ(serial.total_energy_kj.mean(), parallel.total_energy_kj.mean());
        // `last` is the highest replication *index*, not the last to finish.
        EXPECT_EQ(serial.last.avg_error.stats().mean(),
                  parallel.last.avg_error.stats().mean());
        EXPECT_EQ(serial.last.executed_events, parallel.last.executed_events);
    }
}

TEST(ReplicationEngine, CounterTotalsIdenticalAcrossThreadCounts) {
    // The folded counter totals are part of the determinism contract: they
    // are summed in replication-index order, so the map compares equal —
    // names and values — for any thread count.
    const core::ScenarioConfig config = tiny_config();
    exp::ReplicationOptions opt;
    opt.n_reps = 4;

    opt.n_threads = 1;
    const exp::ReplicationSet serial = exp::run_replications(config, opt);
    ASSERT_FALSE(serial.counter_totals.empty());
    EXPECT_TRUE(serial.counter_totals.contains("medium.frames_sent"));
    EXPECT_GT(serial.counter_totals.at("node.0.mac.tx_frames"), 0u);

    opt.n_threads = 2;
    const exp::ReplicationSet parallel = exp::run_replications(config, opt);
    EXPECT_EQ(serial.counter_totals, parallel.counter_totals);

    // Per-record counters survive the fold and sum to the totals.
    std::uint64_t frames = 0;
    for (const auto& rec : serial.records) {
        for (const auto& [name, value] : rec.counters) {
            if (name == "medium.frames_sent") frames += value;
        }
    }
    EXPECT_EQ(serial.counter_totals.at("medium.frames_sent"), frames);
}

TEST(ReplicationEngine, ReplicationIndependentOfPredecessors) {
    const core::ScenarioConfig config = tiny_config();
    exp::ReplicationOptions opt;
    opt.n_reps = 4;
    opt.n_threads = 2;
    const exp::ReplicationSet set = exp::run_replications(config, opt);

    // Replication 3 run on its own — without replications 0..2 ever
    // happening — produces the same record.
    const exp::ReplicationRecord alone =
        exp::run_single_replication(config, 3, opt.warmup_slack);
    expect_records_identical(set.records[3], alone);
}

TEST(ReplicationEngine, ReplicationSeedsAreDerivedAndDistinct) {
    // The per-replication master seed comes from the RngManager hash — the
    // same derivation the simulator uses for named streams.
    EXPECT_EQ(exp::replication_seed(7, 3),
              sim::RngManager(7).derive_seed("exp.replication", 3));
    // Distinct across indices and master seeds, and never the raw master.
    EXPECT_NE(exp::replication_seed(7, 0), exp::replication_seed(7, 1));
    EXPECT_NE(exp::replication_seed(7, 0), exp::replication_seed(8, 0));
    EXPECT_NE(exp::replication_seed(7, 0), 7u);
}

TEST(ReplicationEngine, SweepMatchesPerConfigRuns) {
    core::ScenarioConfig a = tiny_config();
    core::ScenarioConfig b = tiny_config();
    b.period = sim::Duration::seconds(30.0);

    exp::ReplicationOptions opt;
    opt.n_reps = 2;
    opt.n_threads = 4;
    const auto sets = exp::run_sweep({a, b}, opt);
    ASSERT_EQ(sets.size(), 2u);

    const exp::ReplicationSet only_a = exp::run_replications(a, opt);
    const exp::ReplicationSet only_b = exp::run_replications(b, opt);
    for (std::size_t i = 0; i < 2; ++i) {
        expect_records_identical(sets[0].records[i], only_a.records[i]);
        expect_records_identical(sets[1].records[i], only_b.records[i]);
    }
}

TEST(ReplicationEngine, WarmupSlackIsConfigurable) {
    const core::ScenarioConfig config = tiny_config();
    exp::ReplicationOptions opt;
    opt.n_reps = 1;
    opt.n_threads = 1;
    opt.warmup_slack = sim::Duration::seconds(30.0);
    const exp::ReplicationSet set = exp::run_replications(config, opt);

    // The steady-state window starts at period + warmup_slack.
    const double expected = set.last.avg_error.mean_in(
        sim::TimePoint::origin() + config.period + opt.warmup_slack,
        sim::TimePoint::max());
    EXPECT_EQ(set.records[0].steady_error_m, expected);

    // A different slack changes the window (and in this short scenario the
    // value), proving the parameter is live rather than hardcoded.
    exp::ReplicationOptions default_opt = opt;
    default_opt.warmup_slack = sim::Duration::seconds(5.0);
    const exp::ReplicationSet def = exp::run_replications(config, default_opt);
    EXPECT_NE(def.records[0].steady_error_m, set.records[0].steady_error_m);
}

TEST(ReplicationEngine, KeepResultsRetainsEveryReplication) {
    exp::ReplicationOptions opt;
    opt.n_reps = 3;
    opt.n_threads = 2;
    opt.keep_results = true;
    const exp::ReplicationSet set = exp::run_replications(tiny_config(), opt);
    ASSERT_EQ(set.results.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(set.results[i].avg_error.stats().mean(),
                  set.records[i].avg_error_m);
    }
    EXPECT_EQ(set.last.executed_events, set.results.back().executed_events);
}

TEST(ReplicationEngine, InvalidInputsThrow) {
    exp::ReplicationOptions opt;
    opt.n_reps = 0;
    EXPECT_THROW(exp::run_replications(tiny_config(), opt),
                 std::invalid_argument);

    // A config that fails validation inside a worker propagates out of the
    // engine instead of being swallowed.
    core::ScenarioConfig bad = tiny_config();
    bad.num_anchors = bad.num_robots + 1;
    exp::ReplicationOptions parallel;
    parallel.n_reps = 2;
    parallel.n_threads = 2;
    EXPECT_THROW(exp::run_replications(bad, parallel), std::exception);
}

TEST(ReplicationEngine, EmptySweepReturnsEmpty) {
    EXPECT_TRUE(exp::run_sweep({}, exp::ReplicationOptions{}).empty());
}

TEST(Ci95Halfwidth, MatchesHandComputedValue) {
    metrics::RunningStat s;
    for (const double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
    // mean 3, sample stddev sqrt(2.5), n = 5, t_{0.975,4} = 2.776:
    // 2.776 * sqrt(2.5) / sqrt(5) = 1.96293...
    EXPECT_NEAR(metrics::ci95_halfwidth(s), 1.96293, 1e-4);

    // Beyond the t-table the normal quantile takes over: 40 samples of
    // stddev sigma give 1.96 * sigma / sqrt(40).
    metrics::RunningStat big;
    for (int i = 0; i < 20; ++i) {
        big.add(10.0);
        big.add(12.0);
    }
    EXPECT_NEAR(metrics::ci95_halfwidth(big),
                1.96 * big.stddev() / std::sqrt(40.0), 1e-9);
}

TEST(Ci95Halfwidth, DegenerateSampleCounts) {
    // n = 0 and n = 1: no interval exists; pinned to 0 (never NaN), like
    // RunningStat::stddev().
    metrics::RunningStat empty;
    EXPECT_EQ(metrics::ci95_halfwidth(empty), 0.0);

    metrics::RunningStat one;
    one.add(42.0);
    EXPECT_EQ(metrics::ci95_halfwidth(one), 0.0);
}

TEST(RunningStat, StddevPinnedForZeroAndOneSamples) {
    // Documented contract (running_stat.hpp): variance/stddev return 0, not
    // NaN, below two samples so "±" columns stay printable.
    metrics::RunningStat empty;
    EXPECT_EQ(empty.stddev(), 0.0);
    EXPECT_EQ(empty.variance(), 0.0);
    EXPECT_FALSE(std::isnan(empty.stddev()));

    metrics::RunningStat one;
    one.add(3.5);
    EXPECT_EQ(one.stddev(), 0.0);
    EXPECT_EQ(one.variance(), 0.0);
    EXPECT_FALSE(std::isnan(one.stddev()));

    metrics::RunningStat two;
    two.add(1.0);
    two.add(3.0);
    EXPECT_NEAR(two.stddev(), std::sqrt(2.0), 1e-12);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
    std::atomic<int> count{0};
    {
        exp::ThreadPool pool(4);
        EXPECT_EQ(pool.size(), 4);
        for (int i = 0; i < 100; ++i) {
            pool.submit([&count] { count.fetch_add(1); });
        }
        pool.wait_idle();
        EXPECT_EQ(count.load(), 100);
        // More work after wait_idle still runs (the pool is reusable).
        pool.submit([&count] { count.fetch_add(1); });
        pool.wait_idle();
    }
    EXPECT_EQ(count.load(), 101);
}

TEST(ThreadPool, DestructorDrainsQueue) {
    std::atomic<int> count{0};
    {
        exp::ThreadPool pool(2);
        for (int i = 0; i < 50; ++i) {
            pool.submit([&count] { count.fetch_add(1); });
        }
        // No wait_idle: ~ThreadPool must finish queued work before joining.
    }
    EXPECT_EQ(count.load(), 50);
}

// Regression: posterior statistics used to live in a lazily filled mutable
// cache, so the first concurrent mean()/spread() readers after a mutation
// raced on the cache fill. Stats are now recomputed eagerly inside every
// mutating call; const reads are plain loads. This test runs in the TSan CI
// job — no thread may read before the constraint below is applied, and no
// main-thread read primes anything before the workers start.
TEST(ThreadPool, ConcurrentGridStatReadsAreRaceFree) {
    core::GridConfig config;
    config.area = geom::Rect::square(120.0);
    config.cell_m = 2.0;
    core::BayesGrid grid(config);

    phy::DistancePdf pdf;
    pdf.mean_m = 40.0;
    pdf.sigma_m = 4.0;
    pdf.gaussian_fit_ok = true;
    pdf.sample_count = 1000;
    grid.apply_constraint({10.0, 20.0}, pdf);

    constexpr std::size_t kReaders = 32;
    std::vector<geom::Vec2> means(kReaders);
    std::vector<double> spreads(kReaders);
    std::vector<double> masses(kReaders);
    {
        exp::ThreadPool pool(4);
        for (std::size_t i = 0; i < kReaders; ++i) {
            pool.submit([&, i] {
                means[i] = grid.mean();
                spreads[i] = grid.spread();
                masses[i] = grid.mass_at(grid.nx() / 2, grid.ny() / 2);
            });
        }
    }
    for (std::size_t i = 1; i < kReaders; ++i) {
        EXPECT_EQ(means[i].x, means[0].x) << "reader " << i;
        EXPECT_EQ(means[i].y, means[0].y) << "reader " << i;
        EXPECT_EQ(spreads[i], spreads[0]) << "reader " << i;
        EXPECT_EQ(masses[i], masses[0]) << "reader " << i;
    }
    EXPECT_GT(spreads[0], 0.0);
}

TEST(ThreadPool, ResolveThreads) {
    EXPECT_EQ(exp::ThreadPool::resolve_threads(3), 3);
    EXPECT_GE(exp::ThreadPool::resolve_threads(0), 1);
    EXPECT_GE(exp::ThreadPool::resolve_threads(-2), 1);
}

}  // namespace
}  // namespace cocoa
