#include <gtest/gtest.h>

#include "core/ekf.hpp"
#include "core/scenario.hpp"
#include "sim/random.hpp"

namespace cocoa::core {
namespace {

using cocoa::geom::Vec2;
using cocoa::sim::Duration;
using cocoa::sim::TimePoint;

TEST(RangeEkf, ResetSetsState) {
    RangeEkf ekf;
    ekf.reset({10.0, 20.0}, 25.0);
    EXPECT_EQ(ekf.mean(), Vec2(10.0, 20.0));
    EXPECT_DOUBLE_EQ(ekf.covariance().xx, 25.0);
    EXPECT_DOUBLE_EQ(ekf.covariance().yy, 25.0);
    EXPECT_DOUBLE_EQ(ekf.covariance().xy, 0.0);
    EXPECT_NEAR(ekf.uncertainty(), std::sqrt(50.0), 1e-12);
}

TEST(RangeEkf, PredictMovesMeanAndGrowsUncertainty) {
    RangeEkf ekf;
    ekf.reset({0.0, 0.0}, 1.0);
    const double before = ekf.uncertainty();
    ekf.predict({3.0, 4.0}, 0.5);
    EXPECT_EQ(ekf.mean(), Vec2(3.0, 4.0));
    EXPECT_GT(ekf.uncertainty(), before);
}

TEST(RangeEkf, UpdateShrinksUncertainty) {
    RangeEkf ekf;
    ekf.reset({50.0, 50.0}, 100.0);
    const double before = ekf.uncertainty();
    EXPECT_TRUE(ekf.update_range({80.0, 50.0}, 30.0, 2.0));
    EXPECT_LT(ekf.uncertainty(), before);
}

TEST(RangeEkf, ConvergesToTruePositionWithThreeAnchors) {
    const Vec2 truth{70.0, 110.0};
    const Vec2 anchors[] = {{40.0, 100.0}, {90.0, 140.0}, {80.0, 80.0}};
    RangeEkf ekf;
    ekf.reset({100.0, 100.0}, 10000.0);
    sim::RandomStream rng(5);
    for (int round = 0; round < 20; ++round) {
        for (const Vec2& a : anchors) {
            const double d = geom::distance(a, truth) + rng.gaussian(0.0, 1.0);
            ekf.update_range(a, d, 1.0);
        }
    }
    EXPECT_LT(geom::distance(ekf.mean(), truth), 2.5);
    EXPECT_LT(ekf.uncertainty(), 3.0);
}

TEST(RangeEkf, GateRejectsWildMeasurement) {
    RangeEkf ekf;
    ekf.reset({50.0, 50.0}, 4.0);  // confident state
    const Vec2 before = ekf.mean();
    // An anchor 10 m away claiming a 100 m range: ~45 sigma innovation.
    EXPECT_FALSE(ekf.update_range({60.0, 50.0}, 100.0, 2.0));
    EXPECT_EQ(ekf.mean(), before);
}

TEST(RangeEkf, GateAcceptsWhenUncertain) {
    RangeEkf ekf;
    ekf.reset({50.0, 50.0}, 10000.0);  // knows nothing
    EXPECT_TRUE(ekf.update_range({60.0, 50.0}, 100.0, 2.0));
}

TEST(RangeEkf, CovarianceStaysPositive) {
    RangeEkf ekf;
    ekf.reset({100.0, 100.0}, 10000.0);
    sim::RandomStream rng(9);
    for (int i = 0; i < 500; ++i) {
        const Vec2 anchor{rng.uniform(0.0, 200.0), rng.uniform(0.0, 200.0)};
        ekf.update_range(anchor, rng.uniform(1.0, 100.0), rng.uniform(0.5, 10.0));
        ekf.predict({rng.gaussian(0.0, 1.0), rng.gaussian(0.0, 1.0)}, 0.1);
        EXPECT_GT(ekf.covariance().xx, 0.0);
        EXPECT_GT(ekf.covariance().yy, 0.0);
        // Cauchy-Schwarz: |xy| <= sqrt(xx * yy) (up to numeric slack).
        EXPECT_LE(ekf.covariance().xy * ekf.covariance().xy,
                  ekf.covariance().xx * ekf.covariance().yy * 1.0001 + 1e-9);
    }
}

TEST(EkfMode, LocalizesInFullScenario) {
    ScenarioConfig c;
    c.seed = 13;
    c.num_robots = 20;
    c.num_anchors = 10;
    c.duration = Duration::minutes(5);
    c.period = Duration::seconds(50.0);
    c.mode = LocalizationMode::Ekf;
    const auto r = run_scenario(c);
    // Continuous fusion localizes in the same regime as CoCoA.
    const double late = r.avg_error.mean_in(TimePoint::from_seconds(120.0),
                                            TimePoint::from_seconds(301.0));
    EXPECT_LT(late, 15.0);
    EXPECT_GT(r.agent_totals.beacons_received, 0u);
    // No window fixes happen in EKF mode (fusion is per beacon).
    EXPECT_EQ(r.localizer_totals.fixes, 0u);
}

TEST(EkfMode, EstimateStaysInsideArea) {
    ScenarioConfig c;
    c.seed = 14;
    c.num_robots = 12;
    c.num_anchors = 4;
    c.duration = Duration::minutes(3);
    c.period = Duration::seconds(30.0);
    c.mode = LocalizationMode::Ekf;
    Scenario s(c);
    s.run();
    for (std::size_t i = 4; i < s.agent_count(); ++i) {
        EXPECT_TRUE(geom::Rect::square(c.area_side_m)
                        .contains(s.agent(static_cast<net::NodeId>(i)).estimate()));
    }
}

}  // namespace
}  // namespace cocoa::core
