#include <gtest/gtest.h>

#include <sstream>

#include "core/scenario.hpp"
#include "metrics/cdf.hpp"

namespace cocoa::core {
namespace {

using cocoa::sim::Duration;
using cocoa::sim::TimePoint;

/// Down-scaled paper setup that runs in well under a second: 20 robots,
/// 10 anchors, 5 simulated minutes.
ScenarioConfig quick(LocalizationMode mode) {
    ScenarioConfig c;
    c.seed = 23;
    c.num_robots = 20;
    c.num_anchors = 10;
    c.duration = Duration::minutes(5);
    c.period = Duration::seconds(50.0);
    c.mode = mode;
    return c;
}

TEST(Scenario, SamplesErrorEverySecond) {
    const auto r = run_scenario(quick(LocalizationMode::Combined));
    EXPECT_EQ(r.avg_error.size(), 300u);
    EXPECT_EQ(r.node_error.size(), 20u);
    for (int i = 0; i < 10; ++i) {
        EXPECT_TRUE(r.node_error[i].empty()) << "anchor " << i;       // anchors
        EXPECT_EQ(r.node_error[10 + i].size(), 300u) << "blind " << i;
    }
}

TEST(Scenario, DeterministicForSameSeed) {
    const auto a = run_scenario(quick(LocalizationMode::Combined));
    const auto b = run_scenario(quick(LocalizationMode::Combined));
    ASSERT_EQ(a.avg_error.size(), b.avg_error.size());
    for (std::size_t i = 0; i < a.avg_error.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.avg_error.samples()[i].value, b.avg_error.samples()[i].value);
    }
    EXPECT_DOUBLE_EQ(a.team_energy.total_mj(), b.team_energy.total_mj());
    EXPECT_EQ(a.executed_events, b.executed_events);
}

TEST(Scenario, KernelFastPathStaysAllocationFree) {
    // The kernel overhaul's steady-state contract, asserted on counters: the
    // overwhelming majority of callbacks fit the 48-byte SBO (misses are the
    // rare control-plane forwards that capture whole packets), and the frame
    // and sensed_by pools recycle nearly every block after warm-up.
    const auto r = run_scenario(quick(LocalizationMode::Combined));
    std::uint64_t scheduled = 0, sbo_miss = 0, executed = 0;
    std::uint64_t frame_reused = 0, frame_fresh = 0, frame_oversize = 0;
    std::uint64_t sensed_reused = 0, sensed_fresh = 0;
    for (const auto& [name, value] : r.counters) {
        if (name == "kernel.events.scheduled") scheduled = value;
        if (name == "kernel.events.sbo_miss") sbo_miss = value;
        if (name == "kernel.events.executed") executed = value;
        if (name == "kernel.pool.frame.reused") frame_reused = value;
        if (name == "kernel.pool.frame.fresh") frame_fresh = value;
        if (name == "kernel.pool.frame.oversize") frame_oversize = value;
        if (name == "kernel.pool.sensed.reused") sensed_reused = value;
        if (name == "kernel.pool.sensed.fresh") sensed_fresh = value;
    }
    EXPECT_GT(scheduled, 0u);
    EXPECT_EQ(executed, r.executed_events);
    // SBO misses stay a sliver of traffic (< 5%): the per-event fast path
    // (beacons, CCA, carrier-sense timers) never touches the heap.
    EXPECT_LT(sbo_miss * 20, scheduled);
    // Pools: a handful of fresh blocks cover the in-flight high-water mark,
    // everything after that is recycled; nothing falls out of the pool.
    EXPECT_GT(frame_reused, frame_fresh * 10);
    EXPECT_GT(sensed_reused, sensed_fresh * 10);
    EXPECT_EQ(frame_oversize, 0u);
}

/// Batched window-end grid updates (grid_update_threads) are invisible in
/// the results: every error sample, every counter and the event count are
/// byte-identical at any pool size — the fold-at-resolution-point contract.
TEST(Scenario, BatchedGridUpdatesAreByteIdentical) {
    const auto inline_fixes = run_scenario(quick(LocalizationMode::Combined));
    for (const int threads : {1, 4}) {
        ScenarioConfig c = quick(LocalizationMode::Combined);
        c.grid_update_threads = threads;
        const auto batched = run_scenario(c);
        ASSERT_EQ(batched.avg_error.size(), inline_fixes.avg_error.size());
        for (std::size_t i = 0; i < batched.avg_error.size(); ++i) {
            ASSERT_DOUBLE_EQ(batched.avg_error.samples()[i].value,
                             inline_fixes.avg_error.samples()[i].value)
                << "sample " << i << " with " << threads << " grid threads";
        }
        EXPECT_EQ(batched.executed_events, inline_fixes.executed_events);
        EXPECT_EQ(batched.agent_totals.fixes, inline_fixes.agent_totals.fixes);
        ASSERT_EQ(batched.counters.size(), inline_fixes.counters.size());
        for (std::size_t i = 0; i < batched.counters.size(); ++i) {
            EXPECT_EQ(batched.counters[i], inline_fixes.counters[i])
                << "counter " << batched.counters[i].first << " with "
                << threads << " grid threads";
        }
    }
}

/// RfOnly holds the estimate between fixes, so a deferred fix result is
/// observable directly through estimate(); it must still resolve before any
/// read. Also covers the mode x batching matrix beyond Combined.
TEST(Scenario, BatchedRfOnlyMatchesInline) {
    const auto inline_fixes = run_scenario(quick(LocalizationMode::RfOnly));
    ScenarioConfig c = quick(LocalizationMode::RfOnly);
    c.grid_update_threads = 2;
    const auto batched = run_scenario(c);
    ASSERT_EQ(batched.avg_error.size(), inline_fixes.avg_error.size());
    for (std::size_t i = 0; i < batched.avg_error.size(); ++i) {
        ASSERT_DOUBLE_EQ(batched.avg_error.samples()[i].value,
                         inline_fixes.avg_error.samples()[i].value);
    }
    EXPECT_EQ(batched.agent_totals.fixes, inline_fixes.agent_totals.fixes);
}

TEST(Scenario, DifferentSeedsDiffer) {
    auto cfg = quick(LocalizationMode::Combined);
    const auto a = run_scenario(cfg);
    cfg.seed = 24;
    const auto b = run_scenario(cfg);
    EXPECT_NE(a.avg_error.stats().mean(), b.avg_error.stats().mean());
}

TEST(Scenario, PaperOrderingCocoaBeatsRfOnlyBeatsOdometry) {
    // The headline comparison of §4.3 (Fig. 7): CoCoA < RF-only, and both
    // beat odometry-only by the end of the run.
    const auto cocoa = run_scenario(quick(LocalizationMode::Combined));
    const auto rf = run_scenario(quick(LocalizationMode::RfOnly));
    const auto odo = run_scenario(quick(LocalizationMode::OdometryOnly));

    const auto late = [](const ScenarioResult& r) {
        return r.avg_error.mean_in(TimePoint::from_seconds(150.0),
                                   TimePoint::from_seconds(301.0));
    };
    EXPECT_LT(late(cocoa), late(rf));
    // Odometry drift at 5 min is already worse than CoCoA.
    EXPECT_LT(late(cocoa), late(odo));
}

TEST(Scenario, SleepCoordinationSavesEnergy) {
    // Fig. 9(b): without coordination the team burns several times more.
    auto cfg = quick(LocalizationMode::Combined);
    const auto coordinated = run_scenario(cfg);
    cfg.sleep_coordination = false;
    const auto uncoordinated = run_scenario(cfg);
    EXPECT_GT(uncoordinated.team_energy.total_mj(),
              2.0 * coordinated.team_energy.total_mj());
    EXPECT_GT(coordinated.team_energy.sleep_mj, 0.0);
    EXPECT_DOUBLE_EQ(uncoordinated.team_energy.sleep_mj, 0.0);
}

TEST(Scenario, LargerPeriodUsesLessEnergy) {
    auto cfg = quick(LocalizationMode::Combined);
    cfg.period = Duration::seconds(25.0);
    const auto small_t = run_scenario(cfg);
    cfg.period = Duration::seconds(100.0);
    const auto large_t = run_scenario(cfg);
    EXPECT_LT(large_t.team_energy.total_mj(), small_t.team_energy.total_mj());
}

TEST(Scenario, RfModesLocalizeWithoutInitialPosition) {
    // §4.2: "RF localization does not require an initial position".
    const auto r = run_scenario(quick(LocalizationMode::RfOnly));
    // Error at the end is far below the initial distance-to-centre (~75 m).
    EXPECT_LT(r.avg_error.mean_in(TimePoint::from_seconds(250.0),
                                  TimePoint::from_seconds(301.0)),
              40.0);
    EXPECT_GT(r.agent_totals.fixes, 0u);
}

TEST(Scenario, ErrorsAtExtractsBlindRobots) {
    const auto r = run_scenario(quick(LocalizationMode::Combined));
    const auto errs = r.errors_at(TimePoint::from_seconds(200.0));
    EXPECT_EQ(errs.size(), 10u);
    const metrics::Cdf cdf(errs);
    EXPECT_GT(cdf.quantile(1.0).value(), 0.0);
}

TEST(Scenario, EnergyBreakdownAddsUp) {
    const auto r = run_scenario(quick(LocalizationMode::Combined));
    const auto& e = r.team_energy;
    EXPECT_GT(e.tx_mj, 0.0);
    EXPECT_GT(e.rx_mj, 0.0);
    EXPECT_GT(e.idle_mj, 0.0);
    EXPECT_GT(e.sleep_mj, 0.0);
    EXPECT_GT(e.transitions_mj, 0.0);
    EXPECT_NEAR(e.total_mj(),
                e.tx_mj + e.rx_mj + e.idle_mj + e.sleep_mj + e.transitions_mj, 1e-9);
    // Sanity scale: 20 radios for 300 s never exceeds always-idle-equivalent.
    EXPECT_LT(e.total_mj(), 20.0 * 300.0 * 900.0 * 1.1);
}

TEST(Scenario, MidRunInspection) {
    Scenario s(quick(LocalizationMode::Combined));
    s.run_until(TimePoint::from_seconds(100.0));
    const auto mid = s.result();
    EXPECT_EQ(mid.avg_error.size(), 100u);
    s.run();
    const auto full = s.result();
    EXPECT_EQ(full.avg_error.size(), 300u);
}

TEST(Scenario, CocoaErrorSawtoothsWithinPeriods) {
    // Fig. 6/8 structure: error is lowest right after a transmit window and
    // grows toward the period end.
    auto cfg = quick(LocalizationMode::RfOnly);
    cfg.sync = SyncMode::PerfectClock;
    cfg.period = Duration::seconds(60.0);
    cfg.duration = Duration::minutes(6);
    const auto r = run_scenario(cfg);
    metrics::RunningStat after_window;
    metrics::RunningStat before_window;
    for (int period = 1; period < 6; ++period) {
        const double t0 = 60.0 * period;
        after_window.add(r.avg_error.value_at(TimePoint::from_seconds(t0 + 6.0)));
        before_window.add(r.avg_error.value_at(TimePoint::from_seconds(t0 + 59.0)));
    }
    EXPECT_LT(after_window.mean(), before_window.mean());
}

TEST(Scenario, FewerAnchorsWorseAccuracy) {
    // Fig. 10's trend at small scale.
    auto cfg = quick(LocalizationMode::Combined);
    cfg.num_anchors = 10;
    const auto many = run_scenario(cfg);
    cfg.seed = 23;
    cfg.num_anchors = 3;
    const auto few = run_scenario(cfg);
    EXPECT_LT(many.avg_error.stats().mean(), few.avg_error.stats().mean());
}

TEST(Scenario, MrmmAndPerfectClockBothLocalize) {
    auto cfg = quick(LocalizationMode::Combined);
    cfg.sync = SyncMode::Mrmm;
    const auto mrmm = run_scenario(cfg);
    cfg.sync = SyncMode::PerfectClock;
    const auto perfect = run_scenario(cfg);
    const auto late = [](const ScenarioResult& r) {
        return r.avg_error.mean_in(TimePoint::from_seconds(150.0),
                                   TimePoint::from_seconds(301.0));
    };
    // Coarse sync costs a little accuracy but stays in the same regime.
    EXPECT_LT(late(mrmm), 3.0 * late(perfect) + 5.0);
    EXPECT_GT(mrmm.agent_totals.syncs_received, 0u);
}

TEST(Scenario, PositionTraceRecordsAllRobots) {
    Scenario s(quick(LocalizationMode::Combined));
    s.enable_position_trace(Duration::seconds(10.0));
    s.run_until(TimePoint::from_seconds(60.0));
    // 6 snapshots x 20 robots.
    EXPECT_EQ(s.position_trace().size(), 120u);
    for (const auto& row : s.position_trace()) {
        EXPECT_TRUE(geom::Rect::square(200.0).contains(row.truth));
    }
    std::ostringstream csv;
    s.write_position_trace_csv(csv);
    EXPECT_NE(csv.str().find("t_s,node,role"), std::string::npos);
    EXPECT_NE(csv.str().find("anchor"), std::string::npos);
    EXPECT_NE(csv.str().find("blind"), std::string::npos);
}

TEST(Scenario, PositionTraceRejectsBadInterval) {
    Scenario s(quick(LocalizationMode::Combined));
    EXPECT_THROW(s.enable_position_trace(Duration::zero()), std::invalid_argument);
}

TEST(Scenario, MissedSyncRobotsKeepSchedule) {
    // Even with heavy clock skew, robots that keep missing SYNCs still fix
    // eventually thanks to the wake guard.
    auto cfg = quick(LocalizationMode::Combined);
    cfg.clock_skew_sigma_s = 0.3;
    const auto r = run_scenario(cfg);
    EXPECT_GT(r.agent_totals.fixes, 0u);
    EXPECT_LT(r.avg_error.mean_in(TimePoint::from_seconds(150.0),
                                  TimePoint::from_seconds(301.0)),
              60.0);
}


TEST(Scenario, CullingOnOffBitIdentical) {
    // Large enough that the influence radius leaves most radios out of range
    // of any given transmission, so culling actually skips work; the run must
    // still be indistinguishable from the unculled one, down to every counter.
    ScenarioConfig base = quick(LocalizationMode::Combined);
    base.area_side_m = 2800.0;
    base.duration = Duration::minutes(3);

    ScenarioConfig culled = base;
    culled.medium.interference_culling = true;
    ScenarioConfig full = base;
    full.medium.interference_culling = false;

    const auto a = run_scenario(culled);
    const auto b = run_scenario(full);

    EXPECT_GT(a.medium_stats.radios_culled, 0u);
    EXPECT_EQ(b.medium_stats.radios_culled, 0u);

    EXPECT_EQ(a.executed_events, b.executed_events);
    ASSERT_EQ(a.counters.size(), b.counters.size());
    for (std::size_t i = 0; i < a.counters.size(); ++i) {
        EXPECT_EQ(a.counters[i].first, b.counters[i].first);
        EXPECT_EQ(a.counters[i].second, b.counters[i].second)
            << "counter " << a.counters[i].first;
    }
    ASSERT_EQ(a.avg_error.size(), b.avg_error.size());
    for (std::size_t i = 0; i < a.avg_error.size(); ++i) {
        EXPECT_EQ(a.avg_error.samples()[i].value, b.avg_error.samples()[i].value);
    }
    EXPECT_EQ(a.team_energy.total_mj(), b.team_energy.total_mj());
}

}  // namespace
}  // namespace cocoa::core
