// Tests for the observability layer (src/obs): the counter registry and its
// node-prefix aggregation, both trace formats down to the byte, the
// wall-clock profiler, and the trace-golden event ordering of a two-node
// MAC exchange end to end.

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "mac/medium.hpp"
#include "mac/radio.hpp"
#include "net/packet.hpp"
#include "obs/counters.hpp"
#include "obs/obs.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "phy/channel.hpp"
#include "sim/simulator.hpp"

namespace cocoa::obs {
namespace {

using cocoa::sim::Duration;
using cocoa::sim::TimePoint;

// ---------------------------------------------------------------- registry

TEST(CounterRegistry, AddAndRead) {
    CounterRegistry reg;
    std::uint64_t a = 3;
    std::uint64_t b = 0;
    reg.add("node.0.mac.tx_frames", &a);
    reg.add("medium.frames_sent", &b);
    EXPECT_EQ(reg.size(), 2u);
    EXPECT_TRUE(reg.contains("medium.frames_sent"));
    EXPECT_FALSE(reg.contains("nope"));
    EXPECT_EQ(reg.value("node.0.mac.tx_frames"), 3u);
    // Registration records a pointer, not a value: later increments show up.
    a = 7;
    EXPECT_EQ(reg.value("node.0.mac.tx_frames"), 7u);
}

TEST(CounterRegistry, RejectsDuplicateAndNull) {
    CounterRegistry reg;
    std::uint64_t x = 0;
    reg.add("a", &x);
    EXPECT_THROW(reg.add("a", &x), std::invalid_argument);
    EXPECT_THROW(reg.add("b", nullptr), std::invalid_argument);
    EXPECT_THROW(reg.value("unknown"), std::out_of_range);
}

TEST(CounterRegistry, SnapshotSortedByName) {
    CounterRegistry reg;
    std::uint64_t x = 1, y = 2, z = 3;
    reg.add("zeta", &z);
    reg.add("alpha", &x);
    reg.add("mid", &y);
    const auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].first, "alpha");
    EXPECT_EQ(snap[1].first, "mid");
    EXPECT_EQ(snap[2].first, "zeta");
    EXPECT_EQ(snap[0].second, 1u);
    EXPECT_EQ(snap[2].second, 3u);
}

TEST(CounterRegistry, SnapshotReusesCachedBuffer) {
    CounterRegistry reg;
    std::uint64_t x = 1;
    std::uint64_t y = 2;
    reg.add("b", &y);
    reg.add("a", &x);
    const auto& first = reg.snapshot();
    const auto* buffer = &first;
    const auto* storage = first.data();
    x = 5;
    const auto& second = reg.snapshot();
    // Same buffer, refreshed in place: per-replication snapshots neither
    // copy names nor allocate once the name set is stable.
    EXPECT_EQ(&second, buffer);
    EXPECT_EQ(second.data(), storage);
    EXPECT_EQ(second[0].first, "a");
    EXPECT_EQ(second[0].second, 5u);
    // Registering after a snapshot rebuilds the cached name column once.
    std::uint64_t z = 9;
    reg.add("c", &z);
    const auto& third = reg.snapshot();
    ASSERT_EQ(third.size(), 3u);
    EXPECT_EQ(third[2].first, "c");
    EXPECT_EQ(third[2].second, 9u);
}

TEST(CounterRegistry, AggregateFoldsNodePrefixes) {
    const std::vector<std::pair<std::string, std::uint64_t>> snap = {
        {"medium.frames_sent", 9},
        {"node.0.mac.tx_frames", 2},
        {"node.12.mac.tx_frames", 5},
        {"node.3.energy.transitions", 4},
        {"node.x.mac.tx_frames", 1},  // non-numeric id: passes through
    };
    const auto agg = aggregate_node_counters(snap);
    EXPECT_EQ(agg.at("mac.tx_frames"), 7u);
    EXPECT_EQ(agg.at("energy.transitions"), 4u);
    EXPECT_EQ(agg.at("medium.frames_sent"), 9u);
    EXPECT_EQ(agg.at("node.x.mac.tx_frames"), 1u);
    EXPECT_FALSE(agg.contains("node.0.mac.tx_frames"));
}

// ------------------------------------------------------------------- trace

TEST(TraceSink, DisabledByDefault) {
    TraceSink sink;
    EXPECT_FALSE(sink.enabled());
    sink.instant(TimePoint::from_seconds(1.0), "mac", "frame", 0);
    EXPECT_EQ(sink.events_emitted(), 0u);
}

TEST(TraceSink, JsonlFormatByteExact) {
    TraceSink sink;
    std::ostringstream os;
    sink.open(os, TraceSink::Format::Jsonl);
    EXPECT_TRUE(sink.enabled());
    sink.instant(TimePoint::from_seconds(1.5), "mac", "rx_lock", 3,
                 {{"rssi_dbm", -80.25}});
    sink.complete(TimePoint::from_seconds(1.0), TimePoint::from_seconds(1.25),
                  "mac", "frame", 0, {{"bytes", 92.0}});
    sink.close();
    EXPECT_FALSE(sink.enabled());
    EXPECT_EQ(sink.events_emitted(), 2u);
    EXPECT_EQ(os.str(),
              "{\"t_s\":1.500000000,\"cat\":\"mac\",\"name\":\"rx_lock\","
              "\"node\":3,\"rssi_dbm\":-80.250000}\n"
              "{\"t_s\":1.000000000,\"cat\":\"mac\",\"name\":\"frame\","
              "\"node\":0,\"dur_s\":0.250000000,\"bytes\":92.000000}\n");
}

TEST(TraceSink, ChromeTraceFormat) {
    TraceSink sink;
    std::ostringstream os;
    sink.open(os, TraceSink::Format::ChromeTrace);
    sink.complete(TimePoint::from_seconds(1.0), TimePoint::from_seconds(1.25),
                  "mac", "frame", 0, {{"bytes", 92.0}});
    sink.instant(TimePoint::from_seconds(1.5), "cocoa", "fix", 3);
    sink.close();
    const std::string out = os.str();
    // The whole thing is a JSON array.
    EXPECT_EQ(out.front(), '[');
    EXPECT_EQ(out.substr(out.size() - 3), "\n]\n");
    // Complete event: sim seconds become trace microseconds, with duration.
    EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(out.find("\"ts\":1000000.000"), std::string::npos);
    EXPECT_NE(out.find("\"dur\":250000.000"), std::string::npos);
    EXPECT_NE(out.find("\"args\":{\"bytes\":92.000000}"), std::string::npos);
    // Instant event with thread (= node) scope.
    EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(out.find("\"s\":\"t\""), std::string::npos);
    EXPECT_NE(out.find("\"tid\":3"), std::string::npos);
    // Exactly one comma separates the two event objects.
    EXPECT_NE(out.find("},\n{"), std::string::npos);
}

TEST(TraceSink, OpenTwiceThrowsAndReopenAfterCloseWorks) {
    TraceSink sink;
    std::ostringstream a;
    sink.open(a, TraceSink::Format::Jsonl);
    std::ostringstream b;
    EXPECT_THROW(sink.open(b, TraceSink::Format::Jsonl), std::logic_error);
    sink.close();
    EXPECT_NO_THROW(sink.open(b, TraceSink::Format::ChromeTrace));
    sink.close();
    EXPECT_EQ(b.str(), "[\n]\n");
}

TEST(TraceSink, OpenFileFailureThrows) {
    TraceSink sink;
    EXPECT_THROW(sink.open_file("/no/such/dir/trace.json",
                                TraceSink::Format::ChromeTrace),
                 std::runtime_error);
    EXPECT_FALSE(sink.enabled());
}

// ---------------------------------------------------------------- profiler

TEST(Profiler, RecordsOnlyWhenEnabled) {
    Profiler::instance().reset();
    Profiler::set_enabled(false);
    { ProfileScope scope("obs_test.disabled"); }
    EXPECT_TRUE(Profiler::instance().entries().empty());

    Profiler::set_enabled(true);
    { ProfileScope scope("obs_test.enabled"); }
    { ProfileScope scope("obs_test.enabled"); }
    Profiler::set_enabled(false);

    const auto entries = Profiler::instance().entries();
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].name, "obs_test.enabled");
    EXPECT_EQ(entries[0].calls, 2u);

    std::ostringstream os;
    Profiler::instance().report(os);
    EXPECT_NE(os.str().find("obs_test.enabled"), std::string::npos);
    Profiler::instance().reset();
    EXPECT_TRUE(Profiler::instance().entries().empty());
}

// ------------------------------------------- trace-golden two-node exchange

/// One frame from radio 0 to radio 1 over a deterministic channel, traced in
/// JSONL. Pins the event *ordering* contract: the frame span is emitted at
/// transmission start, the receiver locks one CCA after that, and delivery
/// lands at frame end.
TEST(TraceGolden, TwoNodeExchangeEventOrder) {
    phy::ChannelConfig cc;
    cc.shadowing_sigma_near_db = 0.0;
    cc.shadowing_sigma_far_db = 0.0;
    cc.fade_mean_far_db = 0.0;
    const phy::Channel channel{cc};
    sim::Simulator sim(1);
    mac::Medium medium(sim, channel);

    mac::MacConfig no_backoff;
    no_backoff.cw_min = 0;
    mac::Radio tx(sim, medium, 0, [] { return geom::Vec2{0.0, 0.0}; },
                  energy::PowerProfile::wavelan(),
                  sim.rng().stream("backoff", 0), no_backoff);
    mac::Radio rx(sim, medium, 1, [] { return geom::Vec2{20.0, 0.0}; },
                  energy::PowerProfile::wavelan(),
                  sim.rng().stream("backoff", 1), no_backoff);
    rx.set_receive_handler([](const net::Packet&, const net::RxInfo&) {});

    std::ostringstream os;
    medium.obs().trace.open(os, TraceSink::Format::Jsonl);
    sim.schedule_at(TimePoint::from_seconds(1.0), [&] {
        net::Packet p;
        p.port = net::Port::Test;
        p.payload_bytes = 24;
        p.payload = net::TestPayload{7};
        tx.send(p);
    });
    sim.run();
    medium.obs().trace.close();

    // Collect the "name" field of every line, in emission order.
    std::vector<std::string> names;
    std::istringstream lines(os.str());
    for (std::string line; std::getline(lines, line);) {
        const auto key = line.find("\"name\":\"");
        ASSERT_NE(key, std::string::npos) << line;
        const auto start = key + 8;
        names.push_back(line.substr(start, line.find('"', start) - start));
        // Every line is one flat JSON object.
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
    }
    const std::vector<std::string> expected = {"frame", "rx_lock", "rx_deliver"};
    EXPECT_EQ(names, expected);

    // The counters of the same exchange, through the same registry.
    EXPECT_EQ(medium.obs().counters.value("node.0.mac.tx_frames"), 1u);
    EXPECT_EQ(medium.obs().counters.value("node.1.mac.rx_delivered"), 1u);
    EXPECT_EQ(medium.obs().counters.value("medium.frames_sent"), 1u);
}

// ------------------------------------------------------- scenario plumbing

TEST(ScenarioCounters, ResultCarriesRegistrySnapshot) {
    core::ScenarioConfig c;
    c.seed = 23;
    c.num_robots = 10;
    c.num_anchors = 5;
    c.duration = Duration::minutes(2);
    c.period = Duration::seconds(50.0);
    const auto r = core::run_scenario(c);
    ASSERT_FALSE(r.counters.empty());

    // Every subsystem shows up under its hierarchical name.
    const auto has = [&](const std::string& name) {
        for (const auto& [n, v] : r.counters) {
            if (n == name) return true;
        }
        return false;
    };
    EXPECT_TRUE(has("medium.frames_sent"));
    EXPECT_TRUE(has("node.0.mac.tx_frames"));
    EXPECT_TRUE(has("node.0.energy.transitions"));
    EXPECT_TRUE(has("node.0.mcast.queries_sent"));
    EXPECT_TRUE(has("node.0.agent.beacons_sent"));
    EXPECT_TRUE(has("node.0.localizer.fixes"));

    // The aggregated view matches the per-node sum for a spot-checked name.
    const auto agg = aggregate_node_counters(r.counters);
    std::uint64_t tx_sum = 0;
    for (const auto& [n, v] : r.counters) {
        if (n.ends_with(".mac.tx_frames")) tx_sum += v;
    }
    EXPECT_EQ(agg.at("mac.tx_frames"), tx_sum);
    EXPECT_GT(tx_sum, 0u);

    // Counter totals line up with the agent stats the scenario already sums.
    EXPECT_EQ(agg.at("agent.fixes"), r.agent_totals.fixes);
}

}  // namespace
}  // namespace cocoa::obs
