#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "geom/motion.hpp"
#include "geom/rect.hpp"
#include "geom/vec2.hpp"

namespace cocoa::geom {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(Vec2, Arithmetic) {
    const Vec2 a{1.0, 2.0};
    const Vec2 b{3.0, -1.0};
    EXPECT_EQ(a + b, Vec2(4.0, 1.0));
    EXPECT_EQ(a - b, Vec2(-2.0, 3.0));
    EXPECT_EQ(a * 2.0, Vec2(2.0, 4.0));
    EXPECT_EQ(2.0 * a, Vec2(2.0, 4.0));
    EXPECT_EQ(a / 2.0, Vec2(0.5, 1.0));
    EXPECT_EQ(-a, Vec2(-1.0, -2.0));
}

TEST(Vec2, CompoundAssignment) {
    Vec2 v{1.0, 1.0};
    v += {2.0, 3.0};
    EXPECT_EQ(v, Vec2(3.0, 4.0));
    v -= {1.0, 1.0};
    EXPECT_EQ(v, Vec2(2.0, 3.0));
    v *= 2.0;
    EXPECT_EQ(v, Vec2(4.0, 6.0));
}

TEST(Vec2, NormAndDistance) {
    EXPECT_DOUBLE_EQ(Vec2(3.0, 4.0).norm(), 5.0);
    EXPECT_DOUBLE_EQ(Vec2(3.0, 4.0).norm_sq(), 25.0);
    EXPECT_DOUBLE_EQ(distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
    EXPECT_DOUBLE_EQ(distance_sq({1.0, 1.0}, {4.0, 5.0}), 25.0);
}

TEST(Vec2, Dot) {
    EXPECT_DOUBLE_EQ(Vec2(1.0, 2.0).dot({3.0, 4.0}), 11.0);
    EXPECT_DOUBLE_EQ(Vec2(1.0, 0.0).dot({0.0, 1.0}), 0.0);
}

TEST(Vec2, Normalized) {
    const Vec2 n = Vec2(3.0, 4.0).normalized();
    EXPECT_DOUBLE_EQ(n.norm(), 1.0);
    EXPECT_DOUBLE_EQ(n.x, 0.6);
    EXPECT_DOUBLE_EQ(n.y, 0.8);
}

TEST(Vec2, NormalizedZeroIsZero) {
    const Vec2 n = Vec2{}.normalized();
    EXPECT_EQ(n, Vec2());
}

TEST(Vec2, HeadingRoundTrip) {
    for (const double h : {0.0, 0.5, -0.5, 1.5, 3.0, -3.0}) {
        const Vec2 v = Vec2::from_heading(h);
        EXPECT_NEAR(v.heading(), h, 1e-12);
        EXPECT_NEAR(v.norm(), 1.0, 1e-12);
    }
}

TEST(Vec2, Stream) {
    std::ostringstream ss;
    ss << Vec2{1.5, -2.0};
    EXPECT_EQ(ss.str(), "(1.5, -2)");
}

TEST(WrapAngle, StaysInRange) {
    for (double a = -25.0; a <= 25.0; a += 0.37) {
        const double w = wrap_angle(a);
        EXPECT_GT(w, -kPi - 1e-12);
        EXPECT_LE(w, kPi + 1e-12);
        // Same direction.
        EXPECT_NEAR(std::cos(w), std::cos(a), 1e-9);
        EXPECT_NEAR(std::sin(w), std::sin(a), 1e-9);
    }
}

TEST(WrapAngle, ExactValues) {
    EXPECT_DOUBLE_EQ(wrap_angle(0.0), 0.0);
    EXPECT_NEAR(wrap_angle(2.0 * kPi), 0.0, 1e-12);
    EXPECT_NEAR(wrap_angle(3.0 * kPi), kPi, 1e-12);
}

TEST(DegRad, RoundTrip) {
    EXPECT_DOUBLE_EQ(deg_to_rad(180.0), kPi);
    EXPECT_DOUBLE_EQ(rad_to_deg(kPi / 2.0), 90.0);
    EXPECT_NEAR(rad_to_deg(deg_to_rad(37.0)), 37.0, 1e-12);
}

TEST(Rect, BasicProperties) {
    const Rect r = Rect::from_bounds(0.0, 0.0, 200.0, 100.0);
    EXPECT_DOUBLE_EQ(r.width(), 200.0);
    EXPECT_DOUBLE_EQ(r.height(), 100.0);
    EXPECT_DOUBLE_EQ(r.area(), 20000.0);
    EXPECT_EQ(r.center(), Vec2(100.0, 50.0));
    EXPECT_NEAR(r.diagonal(), std::sqrt(200.0 * 200.0 + 100.0 * 100.0), 1e-12);
}

TEST(Rect, SquareMatchesPaperArea) {
    // The paper's deployment area: 40 000 m^2.
    const Rect r = Rect::square(200.0);
    EXPECT_DOUBLE_EQ(r.area(), 40000.0);
}

TEST(Rect, Contains) {
    const Rect r = Rect::from_bounds(0.0, 0.0, 10.0, 10.0);
    EXPECT_TRUE(r.contains({5.0, 5.0}));
    EXPECT_TRUE(r.contains({0.0, 0.0}));
    EXPECT_TRUE(r.contains({10.0, 10.0}));
    EXPECT_FALSE(r.contains({10.1, 5.0}));
    EXPECT_FALSE(r.contains({5.0, -0.1}));
}

TEST(Rect, Clamp) {
    const Rect r = Rect::from_bounds(0.0, 0.0, 10.0, 10.0);
    EXPECT_EQ(r.clamp({5.0, 5.0}), Vec2(5.0, 5.0));
    EXPECT_EQ(r.clamp({-3.0, 5.0}), Vec2(0.0, 5.0));
    EXPECT_EQ(r.clamp({12.0, 15.0}), Vec2(10.0, 10.0));
}

TEST(Rect, InvalidThrows) {
    EXPECT_THROW(Rect::from_bounds(1.0, 0.0, 0.0, 10.0), std::invalid_argument);
    EXPECT_THROW(Rect::from_bounds(0.0, 1.0, 10.0, 0.0), std::invalid_argument);
}

TEST(LinkLifetime, StaticNodesInRangeLiveForever) {
    const double life = link_lifetime({0.0, 0.0}, {0.0, 0.0}, {10.0, 0.0}, {0.0, 0.0}, 50.0);
    EXPECT_TRUE(std::isinf(life));
}

TEST(LinkLifetime, OutOfRangeIsZero) {
    const double life = link_lifetime({0.0, 0.0}, {1.0, 0.0}, {100.0, 0.0}, {0.0, 0.0}, 50.0);
    EXPECT_DOUBLE_EQ(life, 0.0);
}

TEST(LinkLifetime, HeadOnSeparation) {
    // B moves away from A along +x at 2 m/s from 10 m apart; range 50 m.
    // Separation reaches 50 m after (50 - 10) / 2 = 20 s.
    const double life = link_lifetime({0.0, 0.0}, {0.0, 0.0}, {10.0, 0.0}, {2.0, 0.0}, 50.0);
    EXPECT_NEAR(life, 20.0, 1e-9);
}

TEST(LinkLifetime, ApproachingThenSeparating) {
    // B starts 40 m away moving toward A at 1 m/s, passes, then separates.
    // Total time inside range: it exits at +50 m on the far side:
    // crossing time = (40 + 50) / 1 = 90 s.
    const double life = link_lifetime({0.0, 0.0}, {0.0, 0.0}, {40.0, 0.0}, {-1.0, 0.0}, 50.0);
    EXPECT_NEAR(life, 90.0, 1e-9);
}

TEST(LinkLifetime, IdenticalVelocitiesNeverSeparate) {
    const double life =
        link_lifetime({0.0, 0.0}, {1.5, -0.5}, {10.0, 10.0}, {1.5, -0.5}, 50.0);
    EXPECT_TRUE(std::isinf(life));
}

TEST(LinkLifetime, SymmetricInArguments) {
    const Vec2 pa{0.0, 0.0}, va{1.0, 0.5}, pb{30.0, -20.0}, vb{-0.5, 1.0};
    EXPECT_NEAR(link_lifetime(pa, va, pb, vb, 60.0), link_lifetime(pb, vb, pa, va, 60.0),
                1e-9);
}

TEST(LinkLifetime, MotionStateHorizonCaps) {
    MotionState a{{0.0, 0.0}, {0.0, 0.0}, 5.0};
    MotionState b{{10.0, 0.0}, {2.0, 0.0}, 100.0};
    // Raw lifetime would be 20 s, but A's plan is only valid for 5 s.
    EXPECT_NEAR(link_lifetime(a, b, 50.0), 5.0, 1e-9);
}

TEST(LinkLifetime, ZeroHorizonMeansUncapped) {
    MotionState a{{0.0, 0.0}, {0.0, 0.0}, 0.0};
    MotionState b{{10.0, 0.0}, {2.0, 0.0}, 0.0};
    EXPECT_NEAR(link_lifetime(a, b, 50.0), 20.0, 1e-9);
}

TEST(LinkLifetime, PerpendicularFlyby) {
    // B passes A at a perpendicular offset of 30 m, speed 3 m/s, range 50 m.
    // Chord half-length = sqrt(50^2 - 30^2) = 40 m; starting abreast of the
    // closest point, exit after 40 / 3 s.
    const double life =
        link_lifetime({0.0, 0.0}, {0.0, 0.0}, {0.0, 30.0}, {3.0, 0.0}, 50.0);
    EXPECT_NEAR(life, 40.0 / 3.0, 1e-9);
}

}  // namespace
}  // namespace cocoa::geom
