#include <gtest/gtest.h>

#include <stdexcept>

#include "net/node.hpp"
#include "net/packet.hpp"
#include "phy/channel.hpp"
#include "sim/simulator.hpp"

namespace cocoa::net {
namespace {

using cocoa::energy::PowerProfile;
using cocoa::geom::Vec2;
using cocoa::sim::Simulator;
using cocoa::sim::TimePoint;

TEST(Packet, WireSizeIncludesHeaders) {
    Packet p;
    p.payload_bytes = 24;
    // 24 payload + 20 IP + 20 UDP (per the paper) + 24 MAC + 4 FCS.
    EXPECT_EQ(p.wire_bytes(), 24u + 20u + 20u + 24u + 4u);
}

TEST(Packet, PaperHeaderSizes) {
    // §2.3: "in addition to the IP and UDP headers (20 bytes each)".
    EXPECT_EQ(kIpHeaderBytes, 20u);
    EXPECT_EQ(kUdpHeaderBytes, 20u);
}

TEST(Packet, PayloadVariantRoundTrip) {
    Packet p;
    p.payload = BeaconPayload{7, {1.0, 2.0}, 3, 1};
    const auto* b = std::get_if<BeaconPayload>(&p.payload);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->anchor_id, 7u);
    EXPECT_EQ(b->anchor_position, Vec2(1.0, 2.0));
    EXPECT_EQ(b->window_seq, 3u);
    EXPECT_EQ(b->beacon_index, 1);
    EXPECT_EQ(std::get_if<SyncPayload>(&p.payload), nullptr);
}

TEST(Packet, NestedMcastData) {
    auto inner = std::make_shared<Packet>();
    inner->payload = SyncPayload{100.0, 3.0, 5, TimePoint::from_seconds(500.0)};
    Packet outer;
    outer.payload = McastDataPayload{1, 0, 9, 0, inner};
    const auto* d = std::get_if<McastDataPayload>(&outer.payload);
    ASSERT_NE(d, nullptr);
    const auto* s = std::get_if<SyncPayload>(&d->inner->payload);
    ASSERT_NE(s, nullptr);
    EXPECT_DOUBLE_EQ(s->period_s, 100.0);
    EXPECT_EQ(s->seq, 5u);
}

TEST(ProtocolHost, DispatchesByPort) {
    ProtocolHost host;
    int beacons = 0;
    int tests = 0;
    host.register_handler(Port::Beacon, [&](const Packet&, const RxInfo&) { ++beacons; });
    host.register_handler(Port::Test, [&](const Packet&, const RxInfo&) { ++tests; });
    Packet p;
    p.port = Port::Beacon;
    host.dispatch(p, {});
    p.port = Port::Test;
    host.dispatch(p, {});
    p.port = Port::McastData;  // no handler: silently dropped
    host.dispatch(p, {});
    EXPECT_EQ(beacons, 1);
    EXPECT_EQ(tests, 1);
}

TEST(ProtocolHost, DuplicateRegistrationThrows) {
    ProtocolHost host;
    host.register_handler(Port::Beacon, [](const Packet&, const RxInfo&) {});
    EXPECT_THROW(host.register_handler(Port::Beacon, [](const Packet&, const RxInfo&) {}),
                 std::logic_error);
}

class WorldFixture : public ::testing::Test {
  protected:
    WorldFixture() : sim_(5), world_(sim_, phy::Channel{}) {}

    mobility::WaypointConfig mobility_config() const {
        mobility::WaypointConfig c;
        c.area = geom::Rect::square(200.0);
        return c;
    }

    Simulator sim_;
    World world_;
};

TEST_F(WorldFixture, NodesGetDenseIds) {
    for (int i = 0; i < 5; ++i) {
        Node& n = world_.add_node(mobility_config(), PowerProfile::wavelan());
        EXPECT_EQ(n.id(), static_cast<NodeId>(i));
    }
    EXPECT_EQ(world_.size(), 5u);
    EXPECT_EQ(world_.node(3).id(), 3u);
}

TEST_F(WorldFixture, NodesStartAtDistinctPositions) {
    Node& a = world_.add_node(mobility_config(), PowerProfile::wavelan());
    Node& b = world_.add_node(mobility_config(), PowerProfile::wavelan());
    EXPECT_NE(a.mobility().position(), b.mobility().position());
}

TEST_F(WorldFixture, ExplicitStartPositionRespected) {
    Node& n = world_.add_node(mobility_config(), PowerProfile::wavelan(), {},
                              Vec2{12.0, 34.0});
    EXPECT_EQ(n.mobility().position(), Vec2(12.0, 34.0));
    EXPECT_EQ(n.radio().position(), Vec2(12.0, 34.0));
}

TEST_F(WorldFixture, RadioTracksMobility) {
    Node& n = world_.add_node(mobility_config(), PowerProfile::wavelan());
    n.mobility().advance_to(TimePoint::from_seconds(50.0));
    EXPECT_EQ(n.radio().position(), n.mobility().position());
}

TEST_F(WorldFixture, ReceivedPacketsFlowThroughHost) {
    Node& a = world_.add_node(mobility_config(), PowerProfile::wavelan(), {},
                              Vec2{0.0, 0.0});
    Node& b = world_.add_node(mobility_config(), PowerProfile::wavelan(), {},
                              Vec2{10.0, 0.0});
    int got = 0;
    b.host().register_handler(Port::Test, [&](const Packet& p, const RxInfo&) {
        EXPECT_EQ(std::get<TestPayload>(p.payload).value, 5u);
        EXPECT_EQ(p.src, a.id());
        ++got;
    });
    sim_.schedule_at(TimePoint::from_seconds(1.0), [&] {
        Packet p;
        p.port = Port::Test;
        p.payload_bytes = 8;
        p.payload = TestPayload{5};
        a.radio().send(std::move(p));
    });
    sim_.run();
    EXPECT_EQ(got, 1);
}

}  // namespace
}  // namespace cocoa::net
