#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "exp/replication.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "mobility/odometry.hpp"

namespace cocoa::fault {
namespace {

using cocoa::sim::Duration;
using cocoa::sim::TimePoint;

core::ScenarioConfig small_config() {
    core::ScenarioConfig c;
    c.seed = 77;
    c.num_robots = 12;
    c.num_anchors = 6;
    c.duration = Duration::seconds(180.0);
    c.period = Duration::seconds(25.0);
    return c;
}

// ---------------------------------------------------------------- plan specs

TEST(FaultPlan, ParsesEveryKind) {
    const FaultPlan plan = FaultPlan::parse(
        "crash@300:node=3;"
        "reboot@100+60:nodes=2-4;"
        "outage@50+10:node=1;"
        "loss@600+30:p=0.25,db=6;"
        "jam@700+5:db=20;"
        "drift@10:node=5,s=0.4;"
        "odo@20+40:node=6,scale=3;"
        "battery@0:node=7,budget_kj=1.5");
    ASSERT_EQ(plan.events.size(), 8u);

    EXPECT_EQ(plan.events[0].kind, FaultKind::Crash);
    EXPECT_DOUBLE_EQ(plan.events[0].at.to_seconds(), 300.0);
    EXPECT_EQ(plan.events[0].node, 3);

    EXPECT_EQ(plan.events[1].kind, FaultKind::Reboot);
    EXPECT_DOUBLE_EQ(plan.events[1].duration.to_seconds(), 60.0);
    EXPECT_EQ(plan.events[1].first_node(), 2);
    EXPECT_EQ(plan.events[1].last_node(), 4);

    EXPECT_EQ(plan.events[3].kind, FaultKind::Loss);
    EXPECT_DOUBLE_EQ(plan.events[3].drop_prob, 0.25);
    EXPECT_DOUBLE_EQ(plan.events[3].attenuation_db, 6.0);

    // jam = loss with mandatory attenuation, p defaulting to 0.
    EXPECT_EQ(plan.events[4].kind, FaultKind::Loss);
    EXPECT_DOUBLE_EQ(plan.events[4].drop_prob, 0.0);
    EXPECT_DOUBLE_EQ(plan.events[4].attenuation_db, 20.0);

    EXPECT_DOUBLE_EQ(plan.events[5].offset_s, 0.4);
    EXPECT_DOUBLE_EQ(plan.events[6].scale, 3.0);
    EXPECT_DOUBLE_EQ(plan.events[7].budget_mj, 1.5e6);

    EXPECT_FALSE(plan.summary().empty());
}

TEST(FaultPlan, BareLossDefaultsToFullDrop) {
    const FaultPlan plan = FaultPlan::parse("loss@10+5");
    ASSERT_EQ(plan.events.size(), 1u);
    EXPECT_DOUBLE_EQ(plan.events[0].drop_prob, 1.0);
}

TEST(FaultPlan, RejectsIllFormedSpecs) {
    EXPECT_THROW(FaultPlan::parse("meteor@10:node=1"), std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("crash@nonsense:node=1"), std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("crash@10"), std::invalid_argument);  // no node
    EXPECT_THROW(FaultPlan::parse("crash@10+5:node=1"), std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("reboot@10:node=1"), std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("loss@10+5:p=1.5"), std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("loss@10+5:node=2,p=0.5"), std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("jam@10+5"), std::invalid_argument);  // no db
    EXPECT_THROW(FaultPlan::parse("drift@10:node=1,s=0"), std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("odo@10:node=1,scale=0"), std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("battery@0:node=1"), std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("crash@10:nodes=5-2"), std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("crash@10:node=1,bogus=3"), std::invalid_argument);
}

TEST(FaultPlan, ParsesPlanFileWithComments) {
    const std::string path = ::testing::TempDir() + "fault_plan_test.txt";
    {
        std::ofstream out(path);
        out << "# resilience drill\n"
            << "crash@60:node=2\n"
            << "\n"
            << "loss@90+15:p=0.5   # mid-run burst\n";
    }
    const FaultPlan plan = FaultPlan::parse_file(path);
    std::remove(path.c_str());
    ASSERT_EQ(plan.events.size(), 2u);
    EXPECT_EQ(plan.events[0].kind, FaultKind::Crash);
    EXPECT_EQ(plan.events[1].kind, FaultKind::Loss);
    EXPECT_THROW(FaultPlan::parse_file("/no/such/fault_plan"), std::runtime_error);
}

TEST(FaultPlan, AnchorCrashPlanKillsHighestIdsFirst) {
    const FaultPlan plan =
        anchor_crash_plan(6, 2, TimePoint::from_seconds(100.0));
    ASSERT_EQ(plan.events.size(), 2u);
    // Highest anchor ids die so the sync robot (node 0) is the last to go.
    EXPECT_EQ(plan.events[0].node, 5);
    EXPECT_EQ(plan.events[1].node, 4);
    EXPECT_TRUE(anchor_crash_plan(6, 0, TimePoint::from_seconds(1.0)).empty());
}

// ------------------------------------------------------------- the injector

TEST(FaultInjector, RejectsOutOfRangeNodes) {
    core::Scenario s(small_config());
    EXPECT_THROW(FaultInjector(s, FaultPlan::parse("crash@10:node=12")),
                 std::invalid_argument);
    EXPECT_THROW(FaultInjector(s, FaultPlan::parse("outage@10+5:nodes=10-14")),
                 std::invalid_argument);
}

TEST(FaultInjector, ArmTwiceThrows) {
    core::Scenario s(small_config());
    FaultInjector injector(s, FaultPlan::parse("crash@10:node=2"));
    injector.arm();
    EXPECT_THROW(injector.arm(), std::logic_error);
}

TEST(FaultInjector, CrashSilencesAnchorAndCountersAppear) {
    core::Scenario s(small_config());
    FaultInjector injector(s, FaultPlan::parse("crash@40:node=2"));
    injector.arm();
    s.run_until(TimePoint::from_seconds(39.0));
    const auto sent_at_crash = s.agent(2).stats().beacons_sent;
    EXPECT_GT(sent_at_crash, 0u);
    s.run();
    EXPECT_EQ(s.agent(2).stats().beacons_sent, sent_at_crash);
    EXPECT_TRUE(s.world().node(2).radio().is_off());
    EXPECT_EQ(injector.stats().crashes, 1u);
    // fault.* counters exist in the registry because the plan is non-empty.
    bool saw_fault_counter = false;
    for (const auto& [name, value] : s.result().counters) {
        if (name.rfind("fault.", 0) == 0) saw_fault_counter = true;
    }
    EXPECT_TRUE(saw_fault_counter);
}

TEST(FaultInjector, RebootRevivesBeaconing) {
    core::ScenarioConfig c = small_config();
    c.duration = Duration::seconds(240.0);
    core::Scenario s(c);
    FaultInjector injector(s, FaultPlan::parse("reboot@40+50:node=2"));
    injector.arm();
    s.run_until(TimePoint::from_seconds(90.0));
    const auto sent_during = s.agent(2).stats().beacons_sent;
    EXPECT_TRUE(s.world().node(2).radio().is_off() ||
                injector.stats().reboots == 1u);
    s.run();
    EXPECT_EQ(injector.stats().crashes, 1u);
    EXPECT_EQ(injector.stats().reboots, 1u);
    EXPECT_FALSE(s.world().node(2).radio().is_off());
    // The anchor beacons again after its cold restart.
    EXPECT_GT(s.agent(2).stats().beacons_sent, sent_during);
}

TEST(FaultInjector, OutageIsDeafAndRecovers) {
    core::ScenarioConfig c = small_config();
    c.duration = Duration::seconds(240.0);
    core::Scenario s(c);
    // Node 8 is blind: during the outage it hears nothing, afterwards it
    // resumes collecting beacons.
    FaultInjector injector(s, FaultPlan::parse("outage@40+60:node=8"));
    injector.arm();
    s.run_until(TimePoint::from_seconds(50.0));
    EXPECT_TRUE(s.world().node(8).radio().in_outage());
    const auto heard_during = s.agent(8).stats().beacons_received;
    s.run_until(TimePoint::from_seconds(99.0));
    EXPECT_EQ(s.agent(8).stats().beacons_received, heard_during);
    s.run();
    EXPECT_FALSE(s.world().node(8).radio().in_outage());
    EXPECT_GT(s.agent(8).stats().beacons_received, heard_during);
    EXPECT_EQ(injector.stats().outages, 1u);
}

TEST(FaultInjector, FullLossBurstBlanksTheMedium) {
    core::ScenarioConfig c = small_config();
    core::Scenario s(c);
    FaultInjector injector(s, FaultPlan::parse("loss@30+60:p=1"));
    injector.arm();
    s.run_until(TimePoint::from_seconds(35.0));
    const auto received_in_burst = s.result().agent_totals.beacons_received;
    s.run_until(TimePoint::from_seconds(85.0));
    // p = 1 drops every reception attempt medium-wide.
    EXPECT_EQ(s.result().agent_totals.beacons_received, received_in_burst);
    EXPECT_GT(s.world().medium().stats().fault_rx_dropped, 0u);
    s.run();
    EXPECT_GT(s.result().agent_totals.beacons_received, received_in_burst);
}

TEST(FaultInjector, ClockDriftShiftsAgentClock) {
    core::Scenario s(small_config());
    FaultInjector injector(s, FaultPlan::parse("drift@10:node=9,s=0.35"));
    injector.arm();
    s.run_until(TimePoint::from_seconds(5.0));
    const double before = s.agent(9).clock_offset_seconds();
    s.run_until(TimePoint::from_seconds(11.0));
    EXPECT_NEAR(s.agent(9).clock_offset_seconds() - before, 0.35, 1e-12);
    EXPECT_EQ(injector.stats().clock_drifts, 1u);
}

TEST(FaultInjector, BatteryBudgetKillsRadio) {
    core::Scenario s(small_config());
    // A few joules go in minutes of duty-cycled operation; 100 mJ dies fast.
    FaultInjector injector(s, FaultPlan::parse("battery@0:node=3,budget_mj=100"));
    injector.arm();
    s.run();
    EXPECT_EQ(injector.stats().battery_deaths, 1u);
    EXPECT_TRUE(s.world().node(3).radio().is_off());
    ASSERT_EQ(injector.realized_intervals().size(), 1u);
    EXPECT_EQ(injector.realized_intervals()[0].second, TimePoint::max());
}

TEST(Odometry, NoiseScaleValidation) {
    mobility::OdometryEstimator odo({}, sim::RandomStream(1));
    EXPECT_DOUBLE_EQ(odo.noise_scale(), 1.0);
    odo.set_noise_scale(4.0);
    EXPECT_DOUBLE_EQ(odo.noise_scale(), 4.0);
    EXPECT_THROW(odo.set_noise_scale(0.0), std::invalid_argument);
    EXPECT_THROW(odo.set_noise_scale(-1.0), std::invalid_argument);
}

TEST(FaultInjector, OdometryDegradeAppliesAndReverts) {
    core::ScenarioConfig c = small_config();
    core::Scenario s(c);
    FaultInjector injector(s, FaultPlan::parse("odo@20+30:nodes=6-7,scale=5"));
    injector.arm();
    s.run_until(TimePoint::from_seconds(60.0));
    EXPECT_EQ(injector.stats().odometry_degrades, 2u);
    s.run();  // revert events at t=50 already fired; run survives to the end
}

// ----------------------------------------------- resilience report + engine

TEST(Resilience, ReportSplitsPhasesAndDegradesDuringFault) {
    core::ScenarioConfig c = small_config();
    c.duration = Duration::seconds(300.0);
    core::Scenario s(c);
    FaultPlan plan = FaultPlan::parse("outage@100+80:nodes=6-11");
    plan.avail_threshold_m = 10.0;
    FaultInjector injector(s, plan);
    injector.arm();
    s.run();
    const ResilienceReport rep = injector.report(s.result());
    EXPECT_EQ(rep.samples_total,
              rep.samples_before + rep.samples_during + rep.samples_after);
    EXPECT_GT(rep.samples_before, 0u);
    EXPECT_GT(rep.samples_during, 0u);
    EXPECT_GT(rep.samples_after, 0u);
    // Every blind robot was deaf for 80 s: availability during the outage
    // cannot beat the fault-free phase before it.
    EXPECT_LE(rep.avail_during, rep.avail_before);
    ASSERT_TRUE(rep.p50_during_m.has_value());
    ASSERT_TRUE(rep.p90_during_m.has_value());
    EXPECT_LE(*rep.p50_during_m, *rep.p90_during_m);
}

TEST(Resilience, ReplicationEngineIsThreadCountInvariant) {
    core::ScenarioConfig c = small_config();
    const FaultPlan plan = FaultPlan::parse(
        "crash@60:node=5;reboot@40+40:node=4;outage@80+30:nodes=8-9;"
        "loss@100+20:p=0.5,db=3;drift@20:node=10,s=0.2;"
        "odo@30+60:node=11,scale=3;battery@0:node=3,budget_mj=150");

    exp::ReplicationOptions serial;
    serial.n_reps = 4;
    serial.n_threads = 1;
    exp::ReplicationOptions parallel = serial;
    parallel.n_threads = 4;

    const exp::ReplicationSet a = exp::run_replications(c, plan, serial);
    const exp::ReplicationSet b = exp::run_replications(c, plan, parallel);

    EXPECT_TRUE(a.has_resilience);
    ASSERT_EQ(a.records.size(), b.records.size());
    for (std::size_t i = 0; i < a.records.size(); ++i) {
        EXPECT_EQ(a.records[i].seed, b.records[i].seed);
        EXPECT_EQ(a.records[i].avg_error_m, b.records[i].avg_error_m);
        EXPECT_EQ(a.records[i].steady_error_m, b.records[i].steady_error_m);
        EXPECT_EQ(a.records[i].counters, b.records[i].counters);
        ASSERT_TRUE(a.records[i].resilience.has_value());
        ASSERT_TRUE(b.records[i].resilience.has_value());
        EXPECT_EQ(a.records[i].resilience->availability,
                  b.records[i].resilience->availability);
        EXPECT_EQ(a.records[i].resilience->samples_during,
                  b.records[i].resilience->samples_during);
        EXPECT_EQ(a.records[i].resilience->reacquired,
                  b.records[i].resilience->reacquired);
    }
    EXPECT_EQ(a.counter_totals, b.counter_totals);
    EXPECT_EQ(a.availability.mean(), b.availability.mean());
    EXPECT_EQ(a.avail_during.mean(), b.avail_during.mean());
    EXPECT_EQ(a.reacquire_s.mean(), b.reacquire_s.mean());
    // The multi-kind plan actually exercised the machinery.
    EXPECT_GT(a.counter_totals.at("fault.crashes"), 0u);
    EXPECT_GT(a.counter_totals.at("fault.reboots"), 0u);
    EXPECT_GT(a.counter_totals.at("fault.battery_deaths"), 0u);
}

TEST(Resilience, EmptyPlanIsZeroOverhead) {
    // An armed-but-empty injector must leave the run bit-identical to a
    // plain one: same error series, same counter snapshot (no fault.* keys).
    const core::ScenarioConfig c = small_config();
    const core::ScenarioResult plain = core::run_scenario(c);

    core::Scenario s(c);
    FaultInjector injector(s, FaultPlan{});
    injector.arm();
    s.run();
    const core::ScenarioResult faulted = s.result();

    EXPECT_EQ(plain.counters, faulted.counters);
    ASSERT_EQ(plain.avg_error.samples().size(), faulted.avg_error.samples().size());
    for (std::size_t i = 0; i < plain.avg_error.samples().size(); ++i) {
        EXPECT_EQ(plain.avg_error.samples()[i].value,
                  faulted.avg_error.samples()[i].value);
    }
    for (const auto& [name, value] : plain.counters) {
        EXPECT_NE(name.rfind("fault.", 0), 0u) << name;
    }
}

TEST(Resilience, AvailabilityDegradesWithCrashedAnchors) {
    core::ScenarioConfig c = small_config();
    c.seed = 5;
    c.num_robots = 16;
    c.num_anchors = 8;
    c.duration = Duration::seconds(600.0);

    exp::ReplicationOptions opt;
    opt.n_reps = 2;
    const TimePoint strike = TimePoint::from_seconds(150.0);

    std::vector<core::ScenarioConfig> configs;
    std::vector<FaultPlan> plans;
    for (const int k : {1, 6}) {
        configs.push_back(c);
        plans.push_back(anchor_crash_plan(c.num_anchors, k, strike));
    }
    const std::vector<exp::ReplicationSet> sets =
        exp::run_sweep(configs, plans, opt);
    ASSERT_EQ(sets.size(), 2u);
    ASSERT_TRUE(sets[0].has_resilience);
    ASSERT_TRUE(sets[1].has_resilience);
    // Losing six of eight anchors is strictly worse than losing one.
    EXPECT_LT(sets[1].availability.mean(), sets[0].availability.mean());
    EXPECT_GT(sets[1].steady_error.mean(), sets[0].steady_error.mean());
}

}  // namespace
}  // namespace cocoa::fault
