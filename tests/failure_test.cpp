#include <gtest/gtest.h>

#include <algorithm>

#include "core/scenario.hpp"

namespace cocoa::core {
namespace {

using cocoa::sim::Duration;
using cocoa::sim::TimePoint;

ScenarioConfig base_config() {
    ScenarioConfig c;
    c.seed = 77;
    c.num_robots = 16;
    c.num_anchors = 8;
    c.duration = Duration::minutes(10);
    c.period = Duration::seconds(25.0);
    return c;
}

TEST(Failure, RadioPowerOffIsTerminal) {
    Scenario s(base_config());
    s.run_until(TimePoint::from_seconds(5.0));
    auto& radio = s.world().node(3).radio();
    radio.power_off();
    EXPECT_TRUE(radio.is_off());
    radio.wake();  // must not revive
    EXPECT_TRUE(radio.is_off());
    radio.sleep();  // must not change state either
    EXPECT_TRUE(radio.is_off());
    EXPECT_NO_THROW(s.run_until(TimePoint::from_seconds(60.0)));
}

TEST(Failure, DeadAnchorStopsBeaconing) {
    Scenario s(base_config());
    s.run_until(TimePoint::from_seconds(30.0));
    const auto sent_before = s.agent(2).stats().beacons_sent;
    EXPECT_GT(sent_before, 0u);
    s.world().node(2).radio().power_off();
    s.run_until(TimePoint::from_seconds(120.0));
    EXPECT_EQ(s.agent(2).stats().beacons_sent, sent_before);
}

TEST(Failure, TeamSurvivesAnchorLoss) {
    // Losing a couple of anchors degrades but does not break localization.
    // The bound is relative to a same-seed fault-free run — an absolute
    // threshold flaked whenever the seed drew an unlucky geometry, because
    // the unlucky draw inflates faulted and unfaulted error alike.
    const ScenarioConfig c = base_config();
    const double base_err =
        run_scenario(c).avg_error.mean_in(TimePoint::from_seconds(120.0),
                                          TimePoint::from_seconds(601.0));

    Scenario s(c);
    s.run_until(TimePoint::from_seconds(60.0));
    s.world().node(3).radio().power_off();
    s.world().node(4).radio().power_off();
    s.run();
    const auto r = s.result();
    const double late_err = r.avg_error.mean_in(TimePoint::from_seconds(120.0),
                                                TimePoint::from_seconds(601.0));
    EXPECT_LT(late_err, std::max(3.0 * base_err, base_err + 10.0))
        << "fault-free baseline was " << base_err << " m";
    EXPECT_GT(r.agent_totals.fixes, 0u);
}

TEST(Failure, SyncRobotDeathTriggersFailover) {
    ScenarioConfig c = base_config();
    c.sync_backups = 2;
    Scenario s(c);
    s.run_until(TimePoint::from_seconds(30.0));
    EXPECT_TRUE(s.agent(0).is_sync_robot());
    s.world().node(0).radio().power_off();
    s.run();
    const auto r = s.result();
    // A backup promoted itself...
    EXPECT_GE(r.agent_totals.sync_takeovers, 1u);
    EXPECT_TRUE(s.agent(1).is_sync_robot() || s.agent(2).is_sync_robot());
    // ...and SYNCs kept flowing afterwards: robots other than the dead
    // primary kept hearing them late in the run.
    std::uint64_t late_syncs = 0;
    for (std::size_t i = 1; i < s.agent_count(); ++i) {
        late_syncs += s.agent(static_cast<net::NodeId>(i)).stats().syncs_received;
    }
    EXPECT_GT(late_syncs, 0u);
    // Localization survived the gap.
    const double late_err = r.avg_error.mean_in(TimePoint::from_seconds(400.0),
                                                TimePoint::from_seconds(601.0));
    EXPECT_LT(late_err, 25.0);
}

TEST(Failure, NoFailoverWhileSyncAlive) {
    ScenarioConfig c = base_config();
    c.sync_backups = 2;
    const auto r = run_scenario(c);
    EXPECT_EQ(r.agent_totals.sync_takeovers, 0u);
}

TEST(Failure, PartitionedRobotsKeepLastEstimate) {
    // Anchors clustered in one corner of a large area: far-away blind robots
    // hear no beacons for long stretches and coast on their previous
    // estimate + odometry, exactly as §2.3 prescribes.
    ScenarioConfig c = base_config();
    c.area_side_m = 600.0;
    c.num_robots = 12;
    c.num_anchors = 4;
    c.duration = Duration::minutes(5);
    Scenario s(c);
    s.run();
    const auto r = s.result();
    EXPECT_GT(r.agent_totals.windows_without_fix, 0u);
    // Estimates remain finite and inside the modelled area.
    for (std::size_t i = c.num_anchors; i < s.agent_count(); ++i) {
        const auto est = s.agent(static_cast<net::NodeId>(i)).estimate();
        EXPECT_TRUE(geom::Rect::square(c.area_side_m).contains(
            geom::Rect::square(c.area_side_m).clamp(est)));
        EXPECT_TRUE(std::isfinite(est.x));
        EXPECT_TRUE(std::isfinite(est.y));
    }
}

TEST(Failure, HeavyClockSkewDegradesGracefully) {
    ScenarioConfig c = base_config();
    c.clock_skew_sigma_s = 1.0;  // 10x the default; guard is only 1 s
    const auto r = run_scenario(c);
    // Some windows are inevitably missed, but the system neither crashes nor
    // collapses to the no-localization baseline.
    EXPECT_GT(r.agent_totals.fixes, 0u);
    const double late_err = r.avg_error.mean_in(TimePoint::from_seconds(300.0),
                                                TimePoint::from_seconds(601.0));
    EXPECT_LT(late_err, 60.0);
}

TEST(Failure, AllAnchorsDeadDegradesToOdometryCoasting) {
    ScenarioConfig c = base_config();
    Scenario s(c);
    s.run_until(TimePoint::from_seconds(60.0));
    for (int i = 0; i < c.num_anchors; ++i) {
        s.world().node(static_cast<net::NodeId>(i)).radio().power_off();
    }
    EXPECT_NO_THROW(s.run());
    const auto r = s.result();
    // Error grows after the loss (estimates go stale) but stays bounded by
    // the area scale.
    const double before = r.avg_error.mean_in(TimePoint::from_seconds(30.0),
                                              TimePoint::from_seconds(60.0));
    const double after = r.avg_error.mean_in(TimePoint::from_seconds(400.0),
                                             TimePoint::from_seconds(601.0));
    EXPECT_GT(after, before);
    EXPECT_LT(after, 300.0);
}

}  // namespace
}  // namespace cocoa::core
