#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/bayes_grid.hpp"
#include "core/grid_kernels.hpp"
#include "sim/random.hpp"

namespace cocoa::core {
namespace {

using cocoa::geom::Rect;
using cocoa::geom::Vec2;

GridConfig paper_grid() {
    GridConfig g;
    g.area = Rect::square(200.0);
    g.cell_m = 2.0;
    return g;
}

phy::DistancePdf make_pdf(double mean, double sigma) {
    phy::DistancePdf pdf;
    pdf.mean_m = mean;
    pdf.sigma_m = sigma;
    pdf.gaussian_fit_ok = true;
    pdf.sample_count = 1000;
    return pdf;
}

TEST(BayesGrid, DimensionsFromCellSize) {
    const BayesGrid g(paper_grid());
    EXPECT_EQ(g.nx(), 100u);
    EXPECT_EQ(g.ny(), 100u);
    EXPECT_EQ(g.cell_count(), 10000u);
    EXPECT_DOUBLE_EQ(g.cell_width(), 2.0);
}

TEST(BayesGrid, NonSquareArea) {
    GridConfig cfg;
    cfg.area = Rect::from_bounds(0.0, 0.0, 100.0, 50.0);
    cfg.cell_m = 5.0;
    const BayesGrid g(cfg);
    EXPECT_EQ(g.nx(), 20u);
    EXPECT_EQ(g.ny(), 10u);
}

TEST(BayesGrid, InvalidConfigThrows) {
    GridConfig cfg = paper_grid();
    cfg.cell_m = 0.0;
    EXPECT_THROW(BayesGrid{cfg}, std::invalid_argument);
    cfg = paper_grid();
    cfg.floor_fraction = 1.0;
    EXPECT_THROW(BayesGrid{cfg}, std::invalid_argument);
    cfg = paper_grid();
    cfg.floor_fraction = -0.1;
    EXPECT_THROW(BayesGrid{cfg}, std::invalid_argument);
}

TEST(BayesGrid, UniformPriorProperties) {
    const BayesGrid g(paper_grid());
    EXPECT_NEAR(g.total_mass(), 1.0, 1e-9);
    // Eq. (3) over the uniform prior gives the area centre.
    const Vec2 mean = g.mean();
    EXPECT_NEAR(mean.x, 100.0, 1e-9);
    EXPECT_NEAR(mean.y, 100.0, 1e-9);
    // Every cell has identical mass.
    EXPECT_NEAR(g.mass_at(0, 0), 1.0 / 10000.0, 1e-15);
    EXPECT_NEAR(g.mass_at(99, 99), 1.0 / 10000.0, 1e-15);
}

TEST(BayesGrid, CellCentersCoverArea) {
    const BayesGrid g(paper_grid());
    EXPECT_EQ(g.cell_center(0, 0), Vec2(1.0, 1.0));
    EXPECT_EQ(g.cell_center(99, 99), Vec2(199.0, 199.0));
    EXPECT_EQ(g.cell_center(49, 0), Vec2(99.0, 1.0));
}

TEST(BayesGrid, ConstraintNormalizes) {
    BayesGrid g(paper_grid());
    g.apply_constraint({100.0, 100.0}, make_pdf(20.0, 3.0));
    EXPECT_NEAR(g.total_mass(), 1.0, 1e-9);
}

TEST(BayesGrid, ConstraintConcentratesOnRing) {
    BayesGrid g(paper_grid());
    const Vec2 anchor{100.0, 100.0};
    g.apply_constraint(anchor, make_pdf(20.0, 3.0));
    // A cell on the ring (distance 20 from the anchor) must beat one far off.
    const double on_ring = g.mass_at(60, 50);   // center (121, 101): d ~ 21
    const double off_ring = g.mass_at(80, 50);  // center (161, 101): d ~ 61
    EXPECT_GT(on_ring, 10.0 * off_ring);
}

TEST(BayesGrid, RingConstraintKeepsMeanNearAnchor) {
    // A single ring constraint is rotationally symmetric: the posterior mean
    // falls near the anchor itself (the ring's centroid).
    BayesGrid g(paper_grid());
    const Vec2 anchor{100.0, 100.0};
    g.apply_constraint(anchor, make_pdf(25.0, 3.0));
    EXPECT_NEAR(g.mean().x, anchor.x, 1.0);
    EXPECT_NEAR(g.mean().y, anchor.y, 1.0);
    // But the spread is large: a ring is not a point estimate.
    EXPECT_GT(g.spread(), 15.0);
}

TEST(BayesGrid, ThreeAnchorsTriangulate) {
    // Eqs. (1)-(3): three ring constraints from well-placed anchors intersect
    // at the true position.
    BayesGrid g(paper_grid());
    const Vec2 truth{80.0, 120.0};
    const Vec2 anchors[] = {{60.0, 100.0}, {110.0, 130.0}, {85.0, 90.0}};
    for (const Vec2& a : anchors) {
        g.apply_constraint(a, make_pdf(geom::distance(a, truth), 2.0));
    }
    EXPECT_NEAR(g.mean().x, truth.x, 2.5);
    EXPECT_NEAR(g.mean().y, truth.y, 2.5);
    // The constraint floor leaves a little mass everywhere, so the spread
    // cannot collapse to the ring-intersection width alone.
    EXPECT_LT(g.spread(), 15.0);
    // MAP agrees with the mean here.
    EXPECT_NEAR(g.map_estimate().x, truth.x, 4.0);
    EXPECT_NEAR(g.map_estimate().y, truth.y, 4.0);
}

TEST(BayesGrid, MoreBeaconsTightenPosterior) {
    const Vec2 truth{80.0, 120.0};
    const Vec2 anchors[] = {{60.0, 100.0}, {110.0, 130.0}, {85.0, 90.0},
                            {50.0, 140.0}, {120.0, 100.0}};
    BayesGrid g3(paper_grid());
    BayesGrid g5(paper_grid());
    int i = 0;
    for (const Vec2& a : anchors) {
        const auto pdf = make_pdf(geom::distance(a, truth), 3.0);
        if (i < 3) g3.apply_constraint(a, pdf);
        g5.apply_constraint(a, pdf);
        ++i;
    }
    EXPECT_LT(g5.spread(), g3.spread());
}

TEST(BayesGrid, SequentialUpdatesCommute) {
    // Bayes: the posterior is order-independent.
    const Vec2 a1{60.0, 100.0};
    const Vec2 a2{110.0, 130.0};
    BayesGrid fwd(paper_grid());
    fwd.apply_constraint(a1, make_pdf(30.0, 4.0));
    fwd.apply_constraint(a2, make_pdf(40.0, 4.0));
    BayesGrid rev(paper_grid());
    rev.apply_constraint(a2, make_pdf(40.0, 4.0));
    rev.apply_constraint(a1, make_pdf(30.0, 4.0));
    EXPECT_NEAR(fwd.mean().x, rev.mean().x, 1e-9);
    EXPECT_NEAR(fwd.mean().y, rev.mean().y, 1e-9);
}

TEST(BayesGrid, ResetRestoresUniform) {
    BayesGrid g(paper_grid());
    g.apply_constraint({100.0, 100.0}, make_pdf(20.0, 3.0));
    g.reset_uniform();
    EXPECT_NEAR(g.mass_at(0, 0), 1.0 / 10000.0, 1e-15);
    EXPECT_NEAR(g.total_mass(), 1.0, 1e-9);
}

TEST(BayesGrid, ConflictingConstraintsStayProper) {
    // Two rings that cannot both hold (anchors 100 m apart, both claiming
    // distance 5 m): the floor keeps the posterior proper.
    BayesGrid g(paper_grid());
    g.apply_constraint({50.0, 100.0}, make_pdf(5.0, 1.0));
    g.apply_constraint({150.0, 100.0}, make_pdf(5.0, 1.0));
    EXPECT_NEAR(g.total_mass(), 1.0, 1e-9);
    const Vec2 mean = g.mean();
    EXPECT_TRUE(paper_grid().area.contains(mean));
}

TEST(BayesGrid, ZeroSigmaConstraintThrows) {
    BayesGrid g(paper_grid());
    EXPECT_THROW(g.apply_constraint({0.0, 0.0}, make_pdf(10.0, 0.0)),
                 std::invalid_argument);
}

TEST(BayesGrid, AnchorOutsideAreaStillWorks) {
    // Beacons can come from robots slightly outside the blind robot's grid
    // model (Eq. 1 only constrains (x, y) inside the deployment area).
    BayesGrid g(paper_grid());
    g.apply_constraint({-20.0, 100.0}, make_pdf(30.0, 3.0));
    EXPECT_NEAR(g.total_mass(), 1.0, 1e-9);
    // Mass concentrates near the area edge closest to the ring.
    EXPECT_LT(g.mean().x, 60.0);
}

TEST(BayesGrid, MeanAlwaysInsideArea) {
    BayesGrid g(paper_grid());
    for (int i = 0; i < 5; ++i) {
        g.apply_constraint({200.0 * (i % 2 ? 1.0 : 0.0), 40.0 * i},
                           make_pdf(10.0 + 20.0 * i, 2.0 + i));
        EXPECT_TRUE(paper_grid().area.contains(g.mean()));
    }
}

// Property sweep (Eq. 2 invariants): for a range of anchor geometries and PDF
// widths, the posterior stays normalized, its mean stays in the area, and a
// correct constraint never pushes the estimate further from the truth than
// the prior's worst case.
class GridPropertySweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(GridPropertySweep, PosteriorInvariants) {
    const auto [anchor_x, sigma] = GetParam();
    const Vec2 truth{120.0, 80.0};
    const Vec2 anchor{anchor_x, 60.0};
    BayesGrid g(paper_grid());
    g.apply_constraint(anchor, make_pdf(geom::distance(anchor, truth), sigma));
    EXPECT_NEAR(g.total_mass(), 1.0, 1e-9);
    EXPECT_TRUE(paper_grid().area.contains(g.mean()));
    EXPECT_GT(g.spread(), 0.0);
    EXPECT_LE(g.spread(), 120.0);
    // The ring passes through the truth: density near the truth must exceed
    // the uniform level.
    const auto ix = static_cast<std::size_t>(truth.x / 2.0);
    const auto iy = static_cast<std::size_t>(truth.y / 2.0);
    EXPECT_GT(g.mass_at(ix, iy), 0.5 / 10000.0);
}

INSTANTIATE_TEST_SUITE_P(
    AnchorsAndWidths, GridPropertySweep,
    ::testing::Combine(::testing::Values(20.0, 60.0, 100.0, 140.0, 180.0),
                       ::testing::Values(1.0, 3.0, 8.0, 20.0)));

// --- radial-kernel fast path ------------------------------------------------

// The kernel fast path must be indistinguishable from the exact sqrt+exp
// reference across random multi-anchor constraint sequences: mean and spread
// within 1e-9 relative (of the area scale), MAP in the same cell.
TEST(BayesGridKernel, LutMatchesExactAcrossRandomConstraints) {
    sim::RandomStream rng(99);
    const double scale = paper_grid().area.diagonal();
    for (int rep = 0; rep < 20; ++rep) {
        BayesGrid fast(paper_grid());
        BayesGrid exact(paper_grid());
        const int constraints = 1 + static_cast<int>(rng.uniform_int(0, 4));
        for (int c = 0; c < constraints; ++c) {
            const Vec2 anchor{rng.uniform(-20.0, 220.0), rng.uniform(-20.0, 220.0)};
            const phy::DistancePdf pdf =
                make_pdf(rng.uniform(2.0, 150.0), rng.uniform(0.5, 25.0));
            fast.apply_constraint(anchor, pdf);
            exact.apply_constraint_exact(anchor, pdf);
        }
        EXPECT_NEAR(fast.mean().x, exact.mean().x, 1e-9 * scale);
        EXPECT_NEAR(fast.mean().y, exact.mean().y, 1e-9 * scale);
        EXPECT_NEAR(fast.spread(), exact.spread(),
                    1e-9 * std::max(scale, exact.spread()));
        // MAP must land in the same cell — cell centres compare exactly.
        EXPECT_EQ(fast.map_estimate().x, exact.map_estimate().x);
        EXPECT_EQ(fast.map_estimate().y, exact.map_estimate().y);
    }
}

// Every kernel self-certifies at build time: interpolated evaluations agree
// with the exact Gaussian-plus-floor to ~1e-10 relative everywhere.
TEST(BayesGridKernel, KernelEvalCertified) {
    BayesGrid g(paper_grid());
    sim::RandomStream rng(7);
    for (const auto& [mean, sigma] :
         {std::pair{40.0, 3.0}, {3.0, 4.0}, {120.0, 15.0}, {1.0, 0.7}}) {
        const RadialKernel& k = g.kernel_for(make_pdf(mean, sigma));
        for (int i = 0; i < 20000; ++i) {
            const double q = rng.uniform(0.0, k.q_hi() * 1.1);
            const double got = k.eval_q(q);
            const double want = k.eval_exact_d(std::sqrt(q));
            EXPECT_NEAR(got, want, 1e-9 * want)
                << "mean=" << mean << " sigma=" << sigma << " q=" << q;
        }
    }
}

// Near-anchor constraints exercise the certified exact-evaluation region
// around the √q singularity; the cells next to the anchor must still match
// the reference to full tolerance.
TEST(BayesGridKernel, NearAnchorCellsExact) {
    BayesGrid fast(paper_grid());
    BayesGrid exact(paper_grid());
    const Vec2 anchor{101.0, 99.0};  // inside a cell, near its corner
    const phy::DistancePdf pdf = make_pdf(1.5, 2.0);
    fast.apply_constraint(anchor, pdf);
    exact.apply_constraint_exact(anchor, pdf);
    for (std::size_t iy = 45; iy < 55; ++iy) {
        for (std::size_t ix = 45; ix < 55; ++ix) {
            EXPECT_NEAR(fast.mass_at(ix, iy), exact.mass_at(ix, iy),
                        1e-9 * exact.mass_at(ix, iy));
        }
    }
}

TEST(BayesGridKernel, CacheIsBoundedAndHits) {
    BayesGrid g(paper_grid());
    const phy::DistancePdf pdf = make_pdf(40.0, 3.0);
    const RadialKernel* first = &g.kernel_for(pdf);
    EXPECT_EQ(&g.kernel_for(pdf), first);  // same (mean, sigma) → same kernel
    EXPECT_EQ(g.kernel_cache_size(), 1u);
    for (int i = 0; i < 40; ++i) {
        g.kernel_for(make_pdf(20.0 + i, 2.0 + 0.1 * i));
    }
    EXPECT_LE(g.kernel_cache_size(), 16u);  // LRU capacity
    // Still correct after heavy eviction.
    g.apply_constraint({100.0, 100.0}, pdf);
    EXPECT_NEAR(g.total_mass(), 1.0, 1e-9);
}

// The compensated/pairwise summations keep the mass budget honest on a
// million-cell grid: drift stays at the 1e-12 level, not n·eps.
TEST(BayesGridKernel, MillionCellMassDrift) {
    GridConfig cfg;
    cfg.area = Rect::square(200.0);
    cfg.cell_m = 0.2;  // 1000 x 1000 cells
    BayesGrid g(cfg);
    ASSERT_EQ(g.cell_count(), 1'000'000u);
    EXPECT_NEAR(g.total_mass(), 1.0, 1e-12);
    g.apply_constraint({60.0, 140.0}, make_pdf(50.0, 4.0));
    EXPECT_NEAR(g.total_mass(), 1.0, 1e-12);
    g.apply_constraint({150.0, 40.0}, make_pdf(80.0, 10.0));
    EXPECT_NEAR(g.total_mass(), 1.0, 1e-12);
    EXPECT_TRUE(cfg.area.contains(g.mean()));
}

/// Restores the global kernel-path override on scope exit, so a failing
/// assertion can't leak a forced path into later tests.
struct ForcePathGuard {
    explicit ForcePathGuard(gridk::ForcePath p) { gridk::set_force_path(p); }
    ~ForcePathGuard() { gridk::set_force_path(gridk::ForcePath::None); }
};

/// Randomized oracle equivalence of the blocked/SIMD apply path against
/// apply_constraint_exact, across the layouts that stress its edge handling:
/// widths that are not a multiple of the 8-lane block (tail blocks padded
/// with +inf colq), non-square grids, floor_fraction = 0 (no in-band floor
/// blending at the band edge) and near-degenerate sigmas that lean on the
/// kernel's sigma floor and certified-exact region.
TEST(BayesGridKernel, SimdMatchesExactOracleOnEdgeLayouts) {
    struct Layout {
        double w, h, cell, floor_frac;
    };
    const std::vector<Layout> layouts = {
        {200.0, 200.0, 1.7, 0.01},   // nx = 118: 14 full blocks + 6-lane tail
        {200.0, 120.0, 2.3, 0.0},    // 87 x 53, zero floor
        {61.0, 200.0, 3.1, 0.05},    // 20 x 65: narrow, block-and-a-half rows
        {200.0, 200.0, 25.0, 0.01},  // 8 x 8: single block per row
    };
    sim::RandomStream rng(4242);
    for (const Layout& l : layouts) {
        GridConfig cfg;
        cfg.area = Rect{{0.0, 0.0}, {l.w, l.h}};
        cfg.cell_m = l.cell;
        cfg.floor_fraction = l.floor_frac;
        for (int rep = 0; rep < 6; ++rep) {
            BayesGrid fast(cfg);
            BayesGrid exact(cfg);
            // Mutually consistent constraints (rings through one truth
            // point): the posterior keeps real mass, so normalization can't
            // amplify the kernel's designed 8.5-sigma band truncation into
            // a visible disagreement with the untruncated oracle.
            const Vec2 truth{rng.uniform(0.1 * l.w, 0.9 * l.w),
                             rng.uniform(0.1 * l.h, 0.9 * l.h)};
            const int constraints = 1 + static_cast<int>(rng.uniform_int(0, 2));
            for (int c = 0; c < constraints; ++c) {
                const Vec2 anchor{rng.uniform(-0.2 * l.w, 1.2 * l.w),
                                  rng.uniform(-0.2 * l.h, 1.2 * l.h)};
                // Sigmas down to 0.05 m: far below cell size, deep into the
                // kernel's sigma-floor/exact-evaluation regime.
                const double d = geom::distance(anchor, truth);
                const phy::DistancePdf pdf =
                    make_pdf(std::max(0.5, d * rng.uniform(0.95, 1.05)),
                             rng.uniform(0.05, 20.0));
                fast.apply_constraint(anchor, pdf);
                exact.apply_constraint_exact(anchor, pdf);
            }
            EXPECT_NEAR(fast.total_mass(), 1.0, 1e-10);
            // Absolute slack 1e-12: beyond the band edge the kernel returns
            // the floor while the oracle keeps an exp tail ~2e-16 of the
            // ring peak — by design, not an equivalence failure.
            for (std::size_t iy = 0; iy < fast.ny(); ++iy) {
                for (std::size_t ix = 0; ix < fast.nx(); ++ix) {
                    const double want = exact.mass_at(ix, iy);
                    ASSERT_NEAR(fast.mass_at(ix, iy), want, 1e-9 * want + 1e-12)
                        << "cell (" << ix << ", " << iy << ") cell_m=" << l.cell
                        << " floor=" << l.floor_frac;
                }
            }
            const double scale = cfg.area.diagonal();
            EXPECT_NEAR(fast.mean().x, exact.mean().x, 1e-9 * scale);
            EXPECT_NEAR(fast.mean().y, exact.mean().y, 1e-9 * scale);
            EXPECT_NEAR(fast.spread(), exact.spread(),
                        1e-9 * std::max(scale, exact.spread()));
        }
    }
}

/// The determinism half of the SIMD contract: the runtime-dispatched ISA
/// instantiation and the portable Generic instantiation produce bitwise
/// identical grids and statistics — this is what lets CI diff fig7 output
/// between -DCOCOA_SIMD=ON and OFF builds byte-for-byte. (On hardware where
/// dispatch resolves to the baseline anyway, it degenerates to self-vs-self
/// and stays green.)
TEST(BayesGridKernel, DispatchedAndGenericPathsAreBitwiseIdentical) {
    GridConfig cfg;
    cfg.area = Rect::square(200.0);
    cfg.cell_m = 1.7;  // odd width: exercises the padded tail block
    BayesGrid dispatched(cfg);
    BayesGrid generic(cfg);

    const Vec2 anchor{37.0, 141.0};
    const std::vector<phy::DistancePdf> pdfs = {
        make_pdf(40.0, 3.0), make_pdf(3.0, 4.0), make_pdf(120.0, 15.0),
        make_pdf(1.0, 0.7)};
    for (const auto& pdf : pdfs) dispatched.apply_constraint(anchor, pdf);
    {
        ForcePathGuard guard(gridk::ForcePath::Generic);
        for (const auto& pdf : pdfs) generic.apply_constraint(anchor, pdf);
    }

    for (std::size_t iy = 0; iy < dispatched.ny(); ++iy) {
        for (std::size_t ix = 0; ix < dispatched.nx(); ++ix) {
            ASSERT_EQ(dispatched.mass_at(ix, iy), generic.mass_at(ix, iy))
                << "cell (" << ix << ", " << iy << ") differs bitwise under "
                << gridk::active_isa();
        }
    }
    EXPECT_EQ(dispatched.mean().x, generic.mean().x);
    EXPECT_EQ(dispatched.mean().y, generic.mean().y);
    EXPECT_EQ(dispatched.spread(), generic.spread());
}

/// ForcePath::Serial bypasses the blocked kernels entirely (the sequential
/// twin the _scalar benches time). It is tolerance-equivalent, not bitwise.
TEST(BayesGridKernel, SerialTwinMatchesWithinTolerance) {
    GridConfig cfg = paper_grid();
    BayesGrid blocked(cfg);
    BayesGrid serial(cfg);
    const phy::DistancePdf pdf = make_pdf(60.0, 5.0);
    blocked.apply_constraint({80.0, 90.0}, pdf);
    {
        ForcePathGuard guard(gridk::ForcePath::Serial);
        serial.apply_constraint({80.0, 90.0}, pdf);
    }
    EXPECT_NEAR(serial.total_mass(), 1.0, 1e-10);
    const double scale = cfg.area.diagonal();
    EXPECT_NEAR(blocked.mean().x, serial.mean().x, 1e-9 * scale);
    EXPECT_NEAR(blocked.mean().y, serial.mean().y, 1e-9 * scale);
    EXPECT_NEAR(blocked.spread(), serial.spread(), 1e-9 * scale);
}

// mean()/spread() are one fused cached pass; mutation invalidates the cache.
TEST(BayesGridKernel, FusedStatsCacheInvalidates) {
    BayesGrid g(paper_grid());
    const Vec2 before = g.mean();
    EXPECT_NEAR(before.x, 100.0, 1e-9);
    g.apply_constraint({40.0, 40.0}, make_pdf(10.0, 3.0));
    const Vec2 after = g.mean();
    EXPECT_GT(geom::distance(before, after), 1.0);
    const double s1 = g.spread();
    g.reset_uniform();
    EXPECT_NE(g.spread(), s1);
    EXPECT_NEAR(g.mean().x, 100.0, 1e-9);
}

}  // namespace
}  // namespace cocoa::core
