#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "phy/channel.hpp"
#include "phy/pdf_table.hpp"
#include "sim/random.hpp"

namespace cocoa::phy {
namespace {

using cocoa::sim::RandomStream;
using cocoa::sim::RngManager;

TEST(Channel, MeanRssiMonotonicallyDecreasing) {
    const Channel ch;
    double prev = ch.mean_rssi_dbm(1.0);
    for (double d = 2.0; d <= 300.0; d += 1.0) {
        const double cur = ch.mean_rssi_dbm(d);
        EXPECT_LT(cur, prev) << "at d=" << d;
        prev = cur;
    }
}

TEST(Channel, CalibratedToPaperAnchors) {
    const Channel ch;
    // The paper: RSSI values down to -80 dBm correspond to distances up to
    // ~40 m, and 802.11b cards reach beyond 150 m.
    EXPECT_NEAR(ch.mean_rssi_dbm(40.0), -80.0, 1.0);
    EXPECT_GT(ch.max_range_m(), 150.0);
    EXPECT_LT(ch.max_range_m(), 200.0);
}

TEST(Channel, BelowReferenceDistanceClamps) {
    const Channel ch;
    EXPECT_DOUBLE_EQ(ch.mean_rssi_dbm(0.1), ch.mean_rssi_dbm(1.0));
}

TEST(Channel, SigmaRampsBeyondBreakpoint) {
    const Channel ch;
    const auto& cfg = ch.config();
    EXPECT_DOUBLE_EQ(ch.shadowing_sigma_db(10.0), cfg.shadowing_sigma_near_db);
    EXPECT_DOUBLE_EQ(ch.shadowing_sigma_db(cfg.breakpoint_m), cfg.shadowing_sigma_near_db);
    EXPECT_DOUBLE_EQ(ch.shadowing_sigma_db(1000.0), cfg.shadowing_sigma_far_db);
}

TEST(Channel, FadeOnlyBeyondBreakpoint) {
    const Channel ch;
    EXPECT_DOUBLE_EQ(ch.fade_mean_db(10.0), 0.0);
    EXPECT_DOUBLE_EQ(ch.fade_mean_db(40.0), 0.0);
    EXPECT_GT(ch.fade_mean_db(50.0), 0.0);
    EXPECT_DOUBLE_EQ(ch.fade_mean_db(500.0), ch.config().fade_mean_far_db);
    // Ramp is monotone.
    EXPECT_LT(ch.fade_mean_db(45.0), ch.fade_mean_db(55.0));
}

TEST(Channel, SampleNearFieldIsUnbiased) {
    const Channel ch;
    RandomStream rng(1);
    double sum = 0.0;
    constexpr int kN = 5000;
    for (int i = 0; i < kN; ++i) sum += ch.sample_rssi_dbm(20.0, rng);
    EXPECT_NEAR(sum / kN, ch.mean_rssi_dbm(20.0), 0.2);
}

TEST(Channel, SampleFarFieldBiasedDownByFades) {
    const Channel ch;
    RandomStream rng(1);
    double sum = 0.0;
    constexpr int kN = 5000;
    for (int i = 0; i < kN; ++i) sum += ch.sample_rssi_dbm(100.0, rng);
    // Mean sample = path-loss mean - fade mean.
    EXPECT_NEAR(sum / kN, ch.mean_rssi_dbm(100.0) - ch.fade_mean_db(100.0), 0.5);
}

TEST(Channel, ThresholdHelpers) {
    const Channel ch;
    EXPECT_TRUE(ch.decodable(ch.config().rx_sensitivity_dbm));
    EXPECT_FALSE(ch.decodable(ch.config().rx_sensitivity_dbm - 0.1));
    EXPECT_TRUE(ch.sensed(ch.config().carrier_sense_dbm));
    EXPECT_FALSE(ch.sensed(ch.config().carrier_sense_dbm - 0.1));
    EXPECT_GT(ch.carrier_sense_range_m(), ch.max_range_m());
}

TEST(Channel, RangeInversionConsistent) {
    const Channel ch;
    EXPECT_NEAR(ch.mean_rssi_dbm(ch.max_range_m()), ch.config().rx_sensitivity_dbm, 0.01);
}

TEST(Channel, InvalidConfigThrows) {
    ChannelConfig c;
    c.breakpoint_m = 0.5;  // <= ref distance
    EXPECT_THROW(Channel{c}, std::invalid_argument);
    c = ChannelConfig{};
    c.sigma_ramp_end_m = 10.0;  // < breakpoint
    EXPECT_THROW(Channel{c}, std::invalid_argument);
    c = ChannelConfig{};
    c.exponent_near = -1.0;
    EXPECT_THROW(Channel{c}, std::invalid_argument);
}

// --- PDF table / calibration ------------------------------------------------

class PdfTableFixture : public ::testing::Test {
  protected:
    static const PdfTable& table() {
        static const PdfTable t = PdfTable::calibrate(
            Channel{}, CalibrationConfig{}, RngManager(7).stream("calibration"));
        return t;
    }
};

TEST_F(PdfTableFixture, HasUsableBins) {
    EXPECT_GT(table().usable_bin_count(), 40u);
    EXPECT_LT(table().min_rssi_dbm(), -90);
    EXPECT_GT(table().max_rssi_dbm(), -45);
}

TEST_F(PdfTableFixture, GaussianRegimeBoundaryNearPaperValue) {
    // Paper: the Gaussian assumption holds "for signal strength values up to
    // -80dbm, which correspond to physical distances of up to 40 meters".
    const auto boundary = table().weakest_gaussian_rssi();
    ASSERT_TRUE(boundary.has_value());
    EXPECT_LE(*boundary, -74);
    EXPECT_GE(*boundary, -84);
    const DistancePdf* pdf = table().lookup(*boundary);
    ASSERT_NE(pdf, nullptr);
    EXPECT_NEAR(pdf->mean_m, 40.0, 12.0);
}

TEST_F(PdfTableFixture, Fig1aStrongBinIsGaussian) {
    // Fig. 1(a): RSSI = -52 dBm has a clean Gaussian distance PDF.
    const DistancePdf* pdf = table().lookup(-52.0);
    ASSERT_NE(pdf, nullptr);
    EXPECT_TRUE(pdf->gaussian_fit_ok);
    EXPECT_GT(pdf->mean_m, 2.0);
    EXPECT_LT(pdf->mean_m, 12.0);
    EXPECT_LT(pdf->sigma_m, 2.0);
}

TEST_F(PdfTableFixture, Fig1bWeakBinIsNotGaussian) {
    // Fig. 1(b): RSSI = -86 dBm can no longer be approximated by a Gaussian.
    const DistancePdf* pdf = table().lookup(-86.0);
    ASSERT_NE(pdf, nullptr);
    EXPECT_FALSE(pdf->gaussian_fit_ok);
    EXPECT_GT(pdf->sigma_m, 8.0);  // broad
}

TEST_F(PdfTableFixture, MeansMonotoneInRssi) {
    // Weaker signal => larger fitted distance, across the usable range.
    double prev = 0.0;
    for (int rssi = table().max_rssi_dbm(); rssi >= table().min_rssi_dbm(); --rssi) {
        const DistancePdf* pdf = table().lookup(rssi);
        if (pdf == nullptr || !pdf->gaussian_fit_ok) continue;
        EXPECT_GE(pdf->mean_m, prev - 0.5) << "at rssi=" << rssi;
        prev = std::max(prev, pdf->mean_m);
    }
}

TEST_F(PdfTableFixture, GaussianRegimeIsContiguous) {
    bool seen_fail = false;
    for (int rssi = table().max_rssi_dbm(); rssi >= table().min_rssi_dbm(); --rssi) {
        const DistancePdf* pdf = table().lookup(rssi);
        if (pdf == nullptr) continue;
        if (!pdf->gaussian_fit_ok) seen_fail = true;
        if (seen_fail) {
            EXPECT_FALSE(pdf->gaussian_fit_ok) << "regime not contiguous at " << rssi;
        }
    }
}

TEST_F(PdfTableFixture, LookupOutOfRangeIsNull) {
    EXPECT_EQ(table().lookup(0.0), nullptr);
    EXPECT_EQ(table().lookup(-200.0), nullptr);
}

TEST_F(PdfTableFixture, LookupRoundsToNearestBin) {
    const DistancePdf* a = table().lookup(-52.4);
    const DistancePdf* b = table().lookup(-52.0);
    EXPECT_EQ(a, b);
    const DistancePdf* c = table().lookup(-52.6);
    const DistancePdf* d = table().lookup(-53.0);
    EXPECT_EQ(c, d);
}

TEST_F(PdfTableFixture, DensityIntegratesToOne) {
    const DistancePdf* pdf = table().lookup(-60.0);
    ASSERT_NE(pdf, nullptr);
    double integral = 0.0;
    const double step = 0.01;
    for (double d = pdf->mean_m - 8.0 * pdf->sigma_m; d <= pdf->mean_m + 8.0 * pdf->sigma_m;
         d += step) {
        integral += pdf->density(d) * step;
    }
    EXPECT_NEAR(integral, 1.0, 0.01);
}

TEST_F(PdfTableFixture, DensityPeaksAtMean) {
    const DistancePdf* pdf = table().lookup(-55.0);
    ASSERT_NE(pdf, nullptr);
    EXPECT_GT(pdf->density(pdf->mean_m), pdf->density(pdf->mean_m + pdf->sigma_m));
    EXPECT_NEAR(pdf->density(pdf->mean_m),
                1.0 / (pdf->sigma_m * std::sqrt(2.0 * 3.14159265358979323846)), 1e-9);
}

TEST_F(PdfTableFixture, FittedMeanTracksChannelInversion) {
    // For a strong RSSI r, the fitted mean distance should be close to the
    // deterministic inversion of the path-loss curve.
    const Channel ch;
    for (const int rssi : {-50, -60, -70}) {
        const DistancePdf* pdf = table().lookup(rssi);
        ASSERT_NE(pdf, nullptr);
        // Invert: find d with mean_rssi(d) == rssi (bisection).
        double lo = 1.0, hi = 200.0;
        for (int i = 0; i < 50; ++i) {
            const double mid = 0.5 * (lo + hi);
            (ch.mean_rssi_dbm(mid) > rssi ? lo : hi) = mid;
        }
        EXPECT_NEAR(pdf->mean_m, lo, std::max(1.0, 0.15 * lo)) << "rssi=" << rssi;
    }
}

TEST(PdfTable, CalibrationValidation) {
    const Channel ch;
    CalibrationConfig c;
    c.max_distance_m = 0.5;  // < min
    EXPECT_THROW(PdfTable::calibrate(ch, c, RandomStream(1)), std::invalid_argument);
    c = CalibrationConfig{};
    c.samples_per_distance = 0;
    EXPECT_THROW(PdfTable::calibrate(ch, c, RandomStream(1)), std::invalid_argument);
    c = CalibrationConfig{};
    c.distance_step_m = -1.0;
    EXPECT_THROW(PdfTable::calibrate(ch, c, RandomStream(1)), std::invalid_argument);
}

TEST(PdfTable, DeterministicForSameStream) {
    const Channel ch;
    const PdfTable a = PdfTable::calibrate(ch, {}, RandomStream(5));
    const PdfTable b = PdfTable::calibrate(ch, {}, RandomStream(5));
    ASSERT_EQ(a.bin_count(), b.bin_count());
    EXPECT_EQ(a.min_rssi_dbm(), b.min_rssi_dbm());
    for (std::size_t i = 0; i < a.bins().size(); ++i) {
        EXPECT_DOUBLE_EQ(a.bins()[i].mean_m, b.bins()[i].mean_m);
        EXPECT_EQ(a.bins()[i].gaussian_fit_ok, b.bins()[i].gaussian_fit_ok);
    }
}

TEST(PdfTable, ThinBinsUnusable) {
    const Channel ch;
    CalibrationConfig c;
    c.samples_per_distance = 1;
    c.distance_step_m = 10.0;  // very sparse calibration
    c.min_bin_samples = 50;
    const PdfTable t = PdfTable::calibrate(ch, c, RandomStream(3));
    EXPECT_EQ(t.usable_bin_count(), 0u);
    EXPECT_EQ(t.lookup(-60.0), nullptr);
}

TEST(PdfTable, SaveLoadRoundTrip) {
    const Channel ch;
    const PdfTable original =
        PdfTable::calibrate(ch, {}, RngManager(7).stream("calibration"));
    std::stringstream buffer;
    original.save(buffer);
    const PdfTable restored = PdfTable::load(buffer);

    ASSERT_EQ(restored.bin_count(), original.bin_count());
    EXPECT_EQ(restored.min_rssi_dbm(), original.min_rssi_dbm());
    EXPECT_EQ(restored.usable_bin_count(), original.usable_bin_count());
    EXPECT_EQ(restored.weakest_gaussian_rssi(), original.weakest_gaussian_rssi());
    for (std::size_t i = 0; i < original.bins().size(); ++i) {
        EXPECT_DOUBLE_EQ(restored.bins()[i].mean_m, original.bins()[i].mean_m);
        EXPECT_DOUBLE_EQ(restored.bins()[i].sigma_m, original.bins()[i].sigma_m);
        EXPECT_EQ(restored.bins()[i].gaussian_fit_ok, original.bins()[i].gaussian_fit_ok);
        EXPECT_EQ(restored.bins()[i].sample_count, original.bins()[i].sample_count);
    }
    // Lookups behave identically, including the unusable-bin rule.
    for (int rssi = -110; rssi <= -30; ++rssi) {
        const auto* a = original.lookup(rssi);
        const auto* b = restored.lookup(rssi);
        ASSERT_EQ(a == nullptr, b == nullptr) << "rssi " << rssi;
        if (a != nullptr) {
            EXPECT_DOUBLE_EQ(a->mean_m, b->mean_m);
        }
    }
}

TEST(PdfTable, LoadRejectsGarbage) {
    std::stringstream bad1("not-a-table 1\n");
    EXPECT_THROW(PdfTable::load(bad1), std::invalid_argument);
    std::stringstream bad2("cocoa-pdf-table 2\n");
    EXPECT_THROW(PdfTable::load(bad2), std::invalid_argument);
    std::stringstream bad3("cocoa-pdf-table 1\n-90 5 50\n1.0 2.0 1 60\n");  // truncated
    EXPECT_THROW(PdfTable::load(bad3), std::invalid_argument);
    std::stringstream bad4("cocoa-pdf-table 1\n-90 0 50\n");  // zero bins
    EXPECT_THROW(PdfTable::load(bad4), std::invalid_argument);
}

// Boundary stability across calibration seeds: the Gaussian regime edge must
// stay in the paper's neighbourhood regardless of the measurement run.
class CalibrationSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CalibrationSeedSweep, RegimeBoundaryStable) {
    const PdfTable t =
        PdfTable::calibrate(Channel{}, {}, RngManager(GetParam()).stream("calibration"));
    const auto boundary = t.weakest_gaussian_rssi();
    ASSERT_TRUE(boundary.has_value());
    EXPECT_LE(*boundary, -72);
    EXPECT_GE(*boundary, -86);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CalibrationSeedSweep,
                         ::testing::Values(1u, 2u, 3u, 7u, 11u, 23u));

// --- shadowing clamp and max-influence range --------------------------------

/// A rigged generator satisfying the sample_rssi_dbm template contract,
/// returning a fixed (huge) shadowing deviate and zero fades.
struct RiggedRng {
    double gaussian_value = 0.0;
    double gaussian(double mean, double stddev) {
        return mean + gaussian_value * stddev;
    }
    double exponential(double) { return 0.0; }
};

TEST(Channel, ShadowingClampBoundsSampledRssi) {
    const Channel ch;
    const double clamp = ch.config().shadowing_clamp_sigmas;
    RiggedRng rng;
    rng.gaussian_value = 1e6;  // a "draw" far beyond any real deviate
    for (const double d : {5.0, 40.0, 100.0, 500.0, 2000.0}) {
        const double cap = ch.mean_rssi_dbm(d) + clamp * ch.shadowing_sigma_db(d);
        EXPECT_DOUBLE_EQ(ch.sample_rssi_dbm(d, rng), cap) << "d=" << d;
    }
    rng.gaussian_value = 2.0;  // an ordinary deviate passes through unclamped
    EXPECT_DOUBLE_EQ(ch.sample_rssi_dbm(40.0, rng),
                     ch.mean_rssi_dbm(40.0) + 2.0 * ch.shadowing_sigma_db(40.0));
}

TEST(Channel, MaxInfluenceRangeIsConservative) {
    const Channel ch;
    const double r = ch.max_influence_range_m();
    EXPECT_GT(r, ch.carrier_sense_range_m());
    // At the influence range the *best possible* draw just reaches the
    // carrier-sense threshold...
    const double sigma_max = std::max(ch.config().shadowing_sigma_near_db,
                                      ch.config().shadowing_sigma_far_db);
    EXPECT_NEAR(ch.mean_rssi_dbm(r) + ch.config().shadowing_clamp_sigmas * sigma_max,
                ch.config().carrier_sense_dbm, 1e-6);
    // ...and beyond it, even a maximal clamped draw stays below threshold, so
    // culled radios can never sense the frame.
    RiggedRng rng;
    rng.gaussian_value = 1e6;
    for (double d = r * 1.0001; d < r * 4.0; d *= 1.5) {
        EXPECT_LT(ch.sample_rssi_dbm(d, rng), ch.config().carrier_sense_dbm);
    }
}

TEST(Channel, InvalidClampThrows) {
    ChannelConfig cfg;
    cfg.shadowing_clamp_sigmas = 0.0;
    EXPECT_THROW(Channel{cfg}, std::invalid_argument);
}

TEST(Channel, SplitMixDrawsMatchStreamDistributions) {
    // The SplitMix64 URBG plugs into the same std distributions as the
    // mt19937_64 streams; sanity-check its gaussian/exponential moments.
    sim::SplitMix64 rng(12345);
    double sum = 0.0, sum_sq = 0.0;
    constexpr int kN = 20000;
    for (int i = 0; i < kN; ++i) {
        const double x = rng.gaussian(5.0, 2.0);
        sum += x;
        sum_sq += x * x;
    }
    const double mean = sum / kN;
    EXPECT_NEAR(mean, 5.0, 0.1);
    EXPECT_NEAR(std::sqrt(sum_sq / kN - mean * mean), 2.0, 0.1);
    double esum = 0.0;
    for (int i = 0; i < kN; ++i) esum += rng.exponential(7.0);
    EXPECT_NEAR(esum / kN, 7.0, 0.3);
}

}  // namespace
}  // namespace cocoa::phy
