#include <gtest/gtest.h>

#include <stdexcept>

#include "energy/energy.hpp"

namespace cocoa::energy {
namespace {

using cocoa::sim::Duration;
using cocoa::sim::TimePoint;

TEST(PowerProfile, PaperNumbers) {
    // The paper quotes ~900 mW idle vs 50 mW sleep as the basis of CoCoA's
    // savings; these are the defaults.
    const PowerProfile p = PowerProfile::wavelan();
    EXPECT_DOUBLE_EQ(p.power_mw(RadioState::Idle), 900.0);
    EXPECT_DOUBLE_EQ(p.power_mw(RadioState::Sleep), 50.0);
    EXPECT_GT(p.power_mw(RadioState::Tx), p.power_mw(RadioState::Rx));
    EXPECT_GE(p.power_mw(RadioState::Rx), p.power_mw(RadioState::Idle));
    EXPECT_DOUBLE_EQ(p.power_mw(RadioState::Off), 0.0);
}

TEST(RadioState, AwakeClassification) {
    EXPECT_TRUE(is_awake(RadioState::Idle));
    EXPECT_TRUE(is_awake(RadioState::Rx));
    EXPECT_TRUE(is_awake(RadioState::Tx));
    EXPECT_FALSE(is_awake(RadioState::Sleep));
    EXPECT_FALSE(is_awake(RadioState::Off));
}

TEST(RadioState, Names) {
    EXPECT_STREQ(to_string(RadioState::Idle), "idle");
    EXPECT_STREQ(to_string(RadioState::Sleep), "sleep");
    EXPECT_STREQ(to_string(RadioState::Tx), "tx");
}

TEST(EnergyMeter, IdleAccrual) {
    EnergyMeter m(PowerProfile::wavelan(), TimePoint::origin());
    m.settle(TimePoint::from_seconds(10.0));
    EXPECT_DOUBLE_EQ(m.state_mj(RadioState::Idle), 9000.0);  // 900 mW * 10 s
    EXPECT_DOUBLE_EQ(m.total_mj(), 9000.0);
    EXPECT_EQ(m.time_in(RadioState::Idle), Duration::seconds(10.0));
}

TEST(EnergyMeter, StateChangesSplitAccrual) {
    EnergyMeter m(PowerProfile::wavelan(), TimePoint::origin());
    m.change_state(TimePoint::from_seconds(2.0), RadioState::Tx);   // 2 s idle
    m.change_state(TimePoint::from_seconds(3.0), RadioState::Idle); // 1 s tx
    m.settle(TimePoint::from_seconds(5.0));                         // 2 s idle
    EXPECT_DOUBLE_EQ(m.state_mj(RadioState::Idle), 4.0 * 900.0);
    EXPECT_DOUBLE_EQ(m.state_mj(RadioState::Tx), 1.0 * 1400.0);
    EXPECT_EQ(m.time_in(RadioState::Tx), Duration::seconds(1.0));
}

TEST(EnergyMeter, SleepSavesEnergy) {
    EnergyMeter awake(PowerProfile::wavelan(), TimePoint::origin());
    awake.settle(TimePoint::from_seconds(100.0));

    EnergyMeter sleeper(PowerProfile::wavelan(), TimePoint::origin());
    sleeper.change_state(TimePoint::from_seconds(3.0), RadioState::Sleep);
    sleeper.change_state(TimePoint::from_seconds(100.0), RadioState::Idle);
    sleeper.settle(TimePoint::from_seconds(100.0));

    EXPECT_LT(sleeper.total_mj(), awake.total_mj() / 5.0);
}

TEST(EnergyMeter, TransitionCostChargedOnPowerBoundary) {
    PowerProfile p = PowerProfile::wavelan();
    p.transition_mj = 7.0;
    EnergyMeter m(p, TimePoint::origin());
    m.change_state(TimePoint::from_seconds(1.0), RadioState::Sleep);  // down: +7
    m.change_state(TimePoint::from_seconds(2.0), RadioState::Idle);   // up:   +7
    m.change_state(TimePoint::from_seconds(3.0), RadioState::Tx);     // awake->awake: free
    m.change_state(TimePoint::from_seconds(4.0), RadioState::Rx);     // free
    EXPECT_DOUBLE_EQ(m.transition_mj(), 14.0);
    EXPECT_EQ(m.transitions(), 4u);
}

TEST(EnergyMeter, SameStateChangeIsNoop) {
    EnergyMeter m(PowerProfile::wavelan(), TimePoint::origin());
    m.change_state(TimePoint::from_seconds(1.0), RadioState::Idle);
    EXPECT_EQ(m.transitions(), 0u);
    EXPECT_DOUBLE_EQ(m.transition_mj(), 0.0);
}

TEST(EnergyMeter, TimeBackwardsThrows) {
    EnergyMeter m(PowerProfile::wavelan(), TimePoint::from_seconds(5.0));
    EXPECT_THROW(m.change_state(TimePoint::from_seconds(4.0), RadioState::Tx),
                 std::logic_error);
    EXPECT_THROW(m.settle(TimePoint::from_seconds(1.0)), std::logic_error);
}

TEST(EnergyMeter, TotalIsSumOfParts) {
    EnergyMeter m(PowerProfile::wavelan(), TimePoint::origin());
    m.change_state(TimePoint::from_seconds(1.0), RadioState::Tx);
    m.change_state(TimePoint::from_seconds(2.0), RadioState::Rx);
    m.change_state(TimePoint::from_seconds(3.0), RadioState::Sleep);
    m.settle(TimePoint::from_seconds(10.0));
    const double parts = m.state_mj(RadioState::Idle) + m.state_mj(RadioState::Tx) +
                         m.state_mj(RadioState::Rx) + m.state_mj(RadioState::Sleep) +
                         m.state_mj(RadioState::Off) + m.transition_mj();
    EXPECT_DOUBLE_EQ(m.total_mj(), parts);
}

TEST(EnergyMeter, SettleIsIdempotent) {
    EnergyMeter m(PowerProfile::wavelan(), TimePoint::origin());
    m.settle(TimePoint::from_seconds(5.0));
    const double e1 = m.total_mj();
    m.settle(TimePoint::from_seconds(5.0));
    EXPECT_DOUBLE_EQ(m.total_mj(), e1);
}

TEST(EnergyMeter, StartStateRespected) {
    EnergyMeter m(PowerProfile::wavelan(), TimePoint::origin(), RadioState::Sleep);
    m.settle(TimePoint::from_seconds(10.0));
    EXPECT_DOUBLE_EQ(m.state_mj(RadioState::Sleep), 500.0);
    EXPECT_DOUBLE_EQ(m.state_mj(RadioState::Idle), 0.0);
}

TEST(EnergyMeter, IdleVsSleepRatioMatchesPaperClaim) {
    // "significant energy savings are only possible if radios are put in
    // sleep mode instead of idle mode (50mW versus 900mW)" — ratio 18x.
    const PowerProfile p = PowerProfile::wavelan();
    EXPECT_DOUBLE_EQ(p.idle_mw / p.sleep_mw, 18.0);
}

}  // namespace
}  // namespace cocoa::energy
