#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "multicast/odmrp.hpp"
#include "net/node.hpp"
#include "phy/channel.hpp"
#include "sim/simulator.hpp"

namespace cocoa::multicast {
namespace {

using cocoa::energy::PowerProfile;
using cocoa::geom::Vec2;
using cocoa::net::GroupId;
using cocoa::net::Packet;
using cocoa::net::Port;
using cocoa::net::TestPayload;
using cocoa::sim::Duration;
using cocoa::sim::Simulator;
using cocoa::sim::TimePoint;

constexpr GroupId kGroup = 1;

std::shared_ptr<const Packet> make_inner(std::uint64_t value) {
    auto p = std::make_shared<Packet>();
    p->port = Port::Test;
    p->payload_bytes = 16;
    p->payload = TestPayload{value};
    return p;
}

/// A chain / grid of static robots with a multicast fleet on top. Uses a
/// noise-free channel so hop connectivity is deterministic (~160 m range).
class MulticastFixture : public ::testing::Test {
  protected:
    MulticastFixture() : sim_(17), world_(sim_, quiet_channel()) {}

    static phy::Channel quiet_channel() {
        phy::ChannelConfig c;
        c.shadowing_sigma_near_db = 0.0;
        c.shadowing_sigma_far_db = 0.0;
        c.fade_mean_far_db = 0.0;
        return phy::Channel{c};
    }

    /// Static nodes (speed ~0) at the given positions.
    void build(const std::vector<Vec2>& positions, MulticastConfig config = {}) {
        mobility::WaypointConfig mc;
        mc.area = geom::Rect::from_bounds(0.0, 0.0, 2000.0, 2000.0);
        mc.min_speed = 0.001;
        mc.max_speed = 0.002;  // effectively static
        for (const Vec2& p : positions) {
            world_.add_node(mc, PowerProfile::wavelan(), {}, p);
        }
        fleet_.emplace(world_, config);
    }

    Simulator sim_;
    net::World world_;
    std::optional<MulticastFleet> fleet_;
};

TEST_F(MulticastFixture, SingleHopDelivery) {
    build({{0.0, 0.0}, {50.0, 0.0}});
    fleet_->at(1).join(kGroup);
    std::vector<std::uint64_t> got;
    fleet_->at(1).set_deliver_handler(
        [&](GroupId g, const Packet& inner, const net::RxInfo&) {
            EXPECT_EQ(g, kGroup);
            got.push_back(std::get<TestPayload>(inner.payload).value);
        });
    sim_.schedule_at(TimePoint::from_seconds(0.1),
                     [&] { fleet_->at(0).start_source(kGroup); });
    sim_.schedule_at(TimePoint::from_seconds(1.0),
                     [&] { fleet_->at(0).send_data(kGroup, make_inner(42)); });
    sim_.run_until(TimePoint::from_seconds(5.0));
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], 42u);
}

TEST_F(MulticastFixture, MultiHopChainDelivery) {
    // 120 m spacing: each hop reaches only its neighbours (range ~160 m).
    build({{0.0, 0.0}, {120.0, 0.0}, {240.0, 0.0}, {360.0, 0.0}, {480.0, 0.0}});
    int got = 0;
    for (int i = 1; i <= 4; ++i) {
        fleet_->at(i).join(kGroup);
    }
    fleet_->at(4).set_deliver_handler(
        [&](GroupId, const Packet& inner, const net::RxInfo&) {
            got += static_cast<int>(std::get<TestPayload>(inner.payload).value);
        });
    sim_.schedule_at(TimePoint::from_seconds(0.1),
                     [&] { fleet_->at(0).start_source(kGroup); });
    // Give the JOIN QUERY / JOIN REPLY handshake time to build the mesh.
    sim_.schedule_at(TimePoint::from_seconds(2.0),
                     [&] { fleet_->at(0).send_data(kGroup, make_inner(7)); });
    sim_.run_until(TimePoint::from_seconds(10.0));
    EXPECT_EQ(got, 7);
    // Intermediate nodes were recruited as forwarders.
    EXPECT_TRUE(fleet_->at(1).is_forwarder(kGroup) || fleet_->at(2).is_forwarder(kGroup));
}

TEST_F(MulticastFixture, AllMembersReceiveEachPacketOnce) {
    build({{0.0, 0.0}, {100.0, 0.0}, {200.0, 0.0}, {100.0, 100.0}, {200.0, 100.0},
           {0.0, 100.0}});
    std::vector<int> counts(6, 0);
    for (int i = 1; i < 6; ++i) {
        fleet_->at(i).join(kGroup);
        fleet_->at(i).set_deliver_handler(
            [&counts, i](GroupId, const Packet&, const net::RxInfo&) { ++counts[i]; });
    }
    sim_.schedule_at(TimePoint::from_seconds(0.1),
                     [&] { fleet_->at(0).start_source(kGroup); });
    for (int k = 0; k < 3; ++k) {
        sim_.schedule_at(TimePoint::from_seconds(2.0 + k),
                         [&, k] { fleet_->at(0).send_data(kGroup, make_inner(k)); });
    }
    sim_.run_until(TimePoint::from_seconds(10.0));
    for (int i = 1; i < 6; ++i) {
        EXPECT_EQ(counts[i], 3) << "member " << i;
    }
}

TEST_F(MulticastFixture, NonMemberDoesNotDeliver) {
    build({{0.0, 0.0}, {50.0, 0.0}});
    int got = 0;
    fleet_->at(1).set_deliver_handler(
        [&](GroupId, const Packet&, const net::RxInfo&) { ++got; });
    sim_.schedule_at(TimePoint::from_seconds(0.1),
                     [&] { fleet_->at(0).start_source(kGroup); });
    sim_.schedule_at(TimePoint::from_seconds(1.0),
                     [&] { fleet_->at(0).send_data(kGroup, make_inner(1)); });
    sim_.run_until(TimePoint::from_seconds(5.0));
    EXPECT_EQ(got, 0);
    EXPECT_EQ(fleet_->at(1).stats().data_delivered, 0u);
}

TEST_F(MulticastFixture, LeaveStopsDelivery) {
    build({{0.0, 0.0}, {50.0, 0.0}});
    int got = 0;
    fleet_->at(1).join(kGroup);
    fleet_->at(1).set_deliver_handler(
        [&](GroupId, const Packet&, const net::RxInfo&) { ++got; });
    sim_.schedule_at(TimePoint::from_seconds(0.1),
                     [&] { fleet_->at(0).start_source(kGroup); });
    sim_.schedule_at(TimePoint::from_seconds(1.0),
                     [&] { fleet_->at(0).send_data(kGroup, make_inner(1)); });
    sim_.schedule_at(TimePoint::from_seconds(2.0), [&] { fleet_->at(1).leave(kGroup); });
    sim_.schedule_at(TimePoint::from_seconds(3.0),
                     [&] { fleet_->at(0).send_data(kGroup, make_inner(2)); });
    sim_.run_until(TimePoint::from_seconds(6.0));
    EXPECT_EQ(got, 1);
}

TEST_F(MulticastFixture, SendWithoutSourceThrows) {
    build({{0.0, 0.0}});
    EXPECT_THROW(fleet_->at(0).send_data(kGroup, make_inner(1)), std::logic_error);
    EXPECT_THROW(fleet_->at(0).refresh_now(kGroup), std::logic_error);
}

TEST_F(MulticastFixture, NullInnerThrows) {
    build({{0.0, 0.0}});
    fleet_->at(0).start_source(kGroup);
    sim_.run_until(TimePoint::from_seconds(1.0));
    EXPECT_THROW(fleet_->at(0).send_data(kGroup, nullptr), std::invalid_argument);
}

TEST_F(MulticastFixture, StopSourceHaltsRefreshes) {
    MulticastConfig cfg;
    cfg.refresh_interval = Duration::seconds(1.0);
    build({{0.0, 0.0}, {50.0, 0.0}}, cfg);
    fleet_->at(1).join(kGroup);
    sim_.schedule_at(TimePoint::from_seconds(0.1),
                     [&] { fleet_->at(0).start_source(kGroup); });
    sim_.schedule_at(TimePoint::from_seconds(3.0), [&] { fleet_->at(0).stop_source(kGroup); });
    sim_.run_until(TimePoint::from_seconds(10.0));
    const auto queries = fleet_->at(0).stats().queries_sent;
    // ~3 refreshes before stop; definitely not ~10.
    EXPECT_GE(queries, 2u);
    EXPECT_LE(queries, 5u);
}

TEST_F(MulticastFixture, DuplicateDataSuppressedByMrmm) {
    // Dense cluster: everyone hears everyone. With MRMM suppression the
    // number of data transmissions stays far below the member count.
    std::vector<Vec2> positions;
    for (int i = 0; i < 8; ++i) {
        positions.push_back({20.0 * static_cast<double>(i % 4),
                             20.0 * static_cast<double>(i / 4)});
    }
    MulticastConfig cfg;
    cfg.variant = Variant::Mrmm;
    cfg.data_suppression_copies = 2;
    build(positions, cfg);
    for (int i = 1; i < 8; ++i) fleet_->at(i).join(kGroup);
    sim_.schedule_at(TimePoint::from_seconds(0.1),
                     [&] { fleet_->at(0).start_source(kGroup); });
    sim_.schedule_at(TimePoint::from_seconds(2.0),
                     [&] { fleet_->at(0).send_data(kGroup, make_inner(1)); });
    sim_.run_until(TimePoint::from_seconds(6.0));
    const auto total = fleet_->total_stats();
    EXPECT_EQ(total.data_delivered, 7u);  // every member exactly once
    // Forwarding efficiency: with suppression, transmissions stay low.
    EXPECT_LE(total.data_sent, 4u);
}

TEST_F(MulticastFixture, MrmmSuppressesRedundantEcho) {
    // Suppression mechanics (§2.3 "sparser mesh"): a forwarder that hears a
    // copy of the data it is about to echo stays quiet. Chain S-F-M recruits
    // F; a fourth node X (next to F) injects a duplicate copy of the data
    // frame right after the original, inside F's forwarding jitter.
    MulticastConfig cfg;
    cfg.variant = Variant::Mrmm;
    cfg.data_suppression_copies = 1;
    // Wide forwarding jitter so the duplicate reliably lands inside it.
    cfg.data_jitter_max = Duration::millis(200);
    build({{0.0, 0.0}, {120.0, 0.0}, {240.0, 0.0}, {120.0, 20.0}}, cfg);
    fleet_->at(2).join(kGroup);
    sim_.schedule_at(TimePoint::from_seconds(0.1),
                     [&] { fleet_->at(0).start_source(kGroup); });
    sim_.schedule_at(TimePoint::from_seconds(2.0),
                     [&] { fleet_->at(0).send_data(kGroup, make_inner(9)); });
    // X's duplicate: same (group, source, seq) as the original data frame.
    sim_.schedule_at(TimePoint::from_seconds(2.0) + Duration::micros(100), [&] {
        Packet dup;
        dup.port = Port::McastData;
        dup.payload_bytes = 32;
        dup.payload = net::McastDataPayload{kGroup, 0, 0, 3, make_inner(9)};
        world_.node(3).radio().send(std::move(dup));
    });
    sim_.run_until(TimePoint::from_seconds(6.0));
    EXPECT_TRUE(fleet_->at(1).is_forwarder(kGroup));
    EXPECT_EQ(fleet_->at(1).stats().data_suppressed, 1u);
    EXPECT_EQ(fleet_->at(1).stats().data_sent, 0u);
    EXPECT_GE(fleet_->at(1).stats().data_duplicates, 1u);
}

TEST_F(MulticastFixture, MrmmPrefersLongLivedUpstream) {
    // MRMM's mobility-aware pruning: a member choosing between a fast relay
    // (about to leave range) and a static relay must recruit the static one,
    // regardless of which JOIN QUERY copy arrived first.
    mobility::WaypointConfig stat;
    stat.area = geom::Rect::from_bounds(-500.0, -500.0, 2000.0, 2000.0);
    stat.min_speed = 0.001;
    stat.max_speed = 0.002;
    mobility::WaypointConfig fast = stat;
    fast.min_speed = 10.0;
    fast.max_speed = 12.0;

    world_.add_node(stat, PowerProfile::wavelan(), {}, Vec2{0.0, 0.0});      // 0: source
    world_.add_node(fast, PowerProfile::wavelan(), {}, Vec2{120.0, -30.0});  // 1: fast relay
    world_.add_node(stat, PowerProfile::wavelan(), {}, Vec2{120.0, 30.0});   // 2: static relay
    world_.add_node(stat, PowerProfile::wavelan(), {}, Vec2{240.0, 0.0});    // 3: member
    MulticastConfig cfg;
    cfg.variant = Variant::Mrmm;
    fleet_.emplace(world_, cfg);
    fleet_->at(3).join(kGroup);

    sim_.schedule_at(TimePoint::from_seconds(0.1),
                     [&] { fleet_->at(0).start_source(kGroup); });
    sim_.run_until(TimePoint::from_seconds(2.0));
    EXPECT_TRUE(fleet_->at(2).is_forwarder(kGroup));
    EXPECT_FALSE(fleet_->at(1).is_forwarder(kGroup));
}

TEST_F(MulticastFixture, ForwarderStateExpires) {
    MulticastConfig cfg;
    cfg.fg_timeout = Duration::seconds(2.0);
    build({{0.0, 0.0}, {120.0, 0.0}, {240.0, 0.0}}, cfg);
    fleet_->at(2).join(kGroup);
    sim_.schedule_at(TimePoint::from_seconds(0.1),
                     [&] { fleet_->at(0).start_source(kGroup); });
    sim_.run_until(TimePoint::from_seconds(1.0));
    EXPECT_TRUE(fleet_->at(1).is_forwarder(kGroup));
    sim_.run_until(TimePoint::from_seconds(5.0));
    EXPECT_FALSE(fleet_->at(1).is_forwarder(kGroup));
}

TEST_F(MulticastFixture, RefreshNowRebuildsExpiredMesh) {
    MulticastConfig cfg;
    cfg.fg_timeout = Duration::seconds(2.0);
    cfg.auto_refresh = false;
    build({{0.0, 0.0}, {120.0, 0.0}, {240.0, 0.0}}, cfg);
    fleet_->at(2).join(kGroup);
    int got = 0;
    fleet_->at(2).set_deliver_handler(
        [&](GroupId, const Packet&, const net::RxInfo&) { ++got; });
    sim_.schedule_at(TimePoint::from_seconds(0.1),
                     [&] { fleet_->at(0).start_source(kGroup); });
    // Mesh expires by t=3; refresh and send again.
    sim_.schedule_at(TimePoint::from_seconds(5.0), [&] { fleet_->at(0).refresh_now(kGroup); });
    sim_.schedule_at(TimePoint::from_seconds(6.0),
                     [&] { fleet_->at(0).send_data(kGroup, make_inner(1)); });
    sim_.run_until(TimePoint::from_seconds(10.0));
    EXPECT_EQ(got, 1);
}

TEST_F(MulticastFixture, QueriesRespectHopLimit) {
    MulticastConfig cfg;
    cfg.max_hops = 2;
    build({{0.0, 0.0}, {120.0, 0.0}, {240.0, 0.0}, {360.0, 0.0}, {480.0, 0.0}}, cfg);
    fleet_->at(4).join(kGroup);
    int got = 0;
    fleet_->at(4).set_deliver_handler(
        [&](GroupId, const Packet&, const net::RxInfo&) { ++got; });
    sim_.schedule_at(TimePoint::from_seconds(0.1),
                     [&] { fleet_->at(0).start_source(kGroup); });
    sim_.schedule_at(TimePoint::from_seconds(2.0),
                     [&] { fleet_->at(0).send_data(kGroup, make_inner(1)); });
    sim_.run_until(TimePoint::from_seconds(8.0));
    // Node 4 is 4 hops away: the query never reaches it, so no mesh, no data.
    EXPECT_EQ(got, 0);
}

TEST_F(MulticastFixture, SleepingNodeDropsScheduledSends) {
    build({{0.0, 0.0}, {50.0, 0.0}, {100.0, 0.0}});
    fleet_->at(1).join(kGroup);
    fleet_->at(2).join(kGroup);
    sim_.schedule_at(TimePoint::from_seconds(0.1),
                     [&] { fleet_->at(0).start_source(kGroup); });
    // Put node 1 to sleep right as data flows: its jittered forwards/replies
    // must be dropped, not crash.
    sim_.schedule_at(TimePoint::from_seconds(1.0), [&] {
        fleet_->at(0).send_data(kGroup, make_inner(1));
    });
    sim_.schedule_at(TimePoint::from_seconds(1.0) + Duration::millis(1),
                     [&] { world_.node(1).radio().sleep(); });
    EXPECT_NO_THROW(sim_.run_until(TimePoint::from_seconds(5.0)));
}

TEST_F(MulticastFixture, FleetStatsAggregate) {
    build({{0.0, 0.0}, {50.0, 0.0}});
    fleet_->at(1).join(kGroup);
    sim_.schedule_at(TimePoint::from_seconds(0.1),
                     [&] { fleet_->at(0).start_source(kGroup); });
    sim_.schedule_at(TimePoint::from_seconds(1.0),
                     [&] { fleet_->at(0).send_data(kGroup, make_inner(1)); });
    sim_.run_until(TimePoint::from_seconds(5.0));
    const auto total = fleet_->total_stats();
    EXPECT_GE(total.queries_sent, 1u);
    EXPECT_GE(total.replies_sent, 1u);
    EXPECT_EQ(total.data_delivered, 1u);
    EXPECT_EQ(fleet_->size(), 2u);
}

}  // namespace
}  // namespace cocoa::multicast
