#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/log.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace cocoa::sim {
namespace {

TEST(Duration, Conversions) {
    EXPECT_EQ(Duration::seconds(1.5).to_nanos(), 1'500'000'000);
    EXPECT_EQ(Duration::millis(2).to_nanos(), 2'000'000);
    EXPECT_EQ(Duration::micros(3).to_nanos(), 3'000);
    EXPECT_DOUBLE_EQ(Duration::seconds(2.5).to_seconds(), 2.5);
    EXPECT_DOUBLE_EQ(Duration::millis(1500).to_seconds(), 1.5);
    EXPECT_DOUBLE_EQ(Duration::minutes(30).to_seconds(), 1800.0);
}

TEST(Duration, Arithmetic) {
    const Duration a = Duration::seconds(2.0);
    const Duration b = Duration::seconds(0.5);
    EXPECT_EQ((a + b).to_seconds(), 2.5);
    EXPECT_EQ((a - b).to_seconds(), 1.5);
    EXPECT_EQ((a * std::int64_t{3}).to_seconds(), 6.0);
    EXPECT_EQ((a / std::int64_t{4}).to_seconds(), 0.5);
    EXPECT_DOUBLE_EQ(a / b, 4.0);
}

TEST(Duration, Comparisons) {
    EXPECT_LT(Duration::seconds(1.0), Duration::seconds(2.0));
    EXPECT_EQ(Duration::seconds(1.0), Duration::millis(1000));
    EXPECT_TRUE(Duration::zero().is_zero());
    EXPECT_TRUE((Duration::zero() - Duration::millis(1)).is_negative());
}

TEST(Duration, RoundsToNearestNanosecond) {
    EXPECT_EQ(Duration::seconds(1e-9).to_nanos(), 1);
    EXPECT_EQ(Duration::seconds(1.4e-9).to_nanos(), 1);
    EXPECT_EQ(Duration::seconds(1.6e-9).to_nanos(), 2);
}

TEST(TimePoint, Arithmetic) {
    const TimePoint t0 = TimePoint::origin();
    const TimePoint t1 = t0 + Duration::seconds(5.0);
    EXPECT_DOUBLE_EQ(t1.to_seconds(), 5.0);
    EXPECT_EQ(t1 - t0, Duration::seconds(5.0));
    EXPECT_EQ(t1 - Duration::seconds(2.0), TimePoint::from_seconds(3.0));
    EXPECT_LT(t0, t1);
}

TEST(TimeStream, Formats) {
    std::ostringstream ss;
    ss << Duration::seconds(1.5) << ' ' << TimePoint::from_seconds(2.0);
    EXPECT_EQ(ss.str(), "1.5s @2s");
}

TEST(RandomStream, UniformBounds) {
    RandomStream rng(42);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(2.0, 5.0);
        EXPECT_GE(u, 2.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(RandomStream, UniformIntBounds) {
    RandomStream rng(42);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.uniform_int(0, 7);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 7);
        saw_lo |= v == 0;
        saw_hi |= v == 7;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RandomStream, GaussianMoments) {
    RandomStream rng(7);
    double sum = 0.0;
    double sum_sq = 0.0;
    constexpr int kN = 20000;
    for (int i = 0; i < kN; ++i) {
        const double g = rng.gaussian(10.0, 2.0);
        sum += g;
        sum_sq += g * g;
    }
    const double mean = sum / kN;
    const double var = sum_sq / kN - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.1);
    EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(RandomStream, ZeroSigmaGaussianIsMean) {
    RandomStream rng(1);
    EXPECT_DOUBLE_EQ(rng.gaussian(3.5, 0.0), 3.5);
}

TEST(RandomStream, ChanceExtremes) {
    RandomStream rng(1);
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
}

TEST(RngManager, SameNameSameStream) {
    const RngManager mgr(123);
    RandomStream a = mgr.stream("mobility");
    RandomStream b = mgr.stream("mobility");
    for (int i = 0; i < 100; ++i) {
        EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
    }
}

TEST(RngManager, DifferentNamesDiffer) {
    const RngManager mgr(123);
    RandomStream a = mgr.stream("mobility");
    RandomStream b = mgr.stream("phy");
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0)) ++equal;
    }
    EXPECT_LT(equal, 5);
}

TEST(RngManager, IndexedStreamsDiffer) {
    const RngManager mgr(9);
    RandomStream a = mgr.stream("odometry", 1);
    RandomStream b = mgr.stream("odometry", 2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0)) ++equal;
    }
    EXPECT_LT(equal, 5);
}

TEST(RngManager, SeedChangesStreams) {
    RandomStream a = RngManager(1).stream("x");
    RandomStream b = RngManager(2).stream("x");
    EXPECT_NE(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
}

TEST(EventQueue, FiresInTimeOrder) {
    EventQueue q;
    std::vector<int> order;
    q.schedule(TimePoint::from_seconds(3.0), [&] { order.push_back(3); });
    q.schedule(TimePoint::from_seconds(1.0), [&] { order.push_back(1); });
    q.schedule(TimePoint::from_seconds(2.0), [&] { order.push_back(2); });
    while (!q.empty()) q.pop().callback();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoAtEqualTimes) {
    EventQueue q;
    std::vector<int> order;
    const TimePoint t = TimePoint::from_seconds(1.0);
    for (int i = 0; i < 5; ++i) {
        q.schedule(t, [&order, i] { order.push_back(i); });
    }
    while (!q.empty()) q.pop().callback();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsFiring) {
    EventQueue q;
    bool fired = false;
    const EventId id = q.schedule(TimePoint::from_seconds(1.0), [&] { fired = true; });
    EXPECT_TRUE(q.cancel(id));
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(fired);
}

TEST(EventQueue, DoubleCancelFails) {
    EventQueue q;
    const EventId id = q.schedule(TimePoint::from_seconds(1.0), [] {});
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterFireFails) {
    EventQueue q;
    const EventId id = q.schedule(TimePoint::from_seconds(1.0), [] {});
    q.pop().callback();
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelInvalidIdFails) {
    EventQueue q;
    EXPECT_FALSE(q.cancel(EventId{}));
}

TEST(EventQueue, StaleCancelDoesNotCorruptCount) {
    EventQueue q;
    const EventId id = q.schedule(TimePoint::from_seconds(1.0), [] {});
    q.schedule(TimePoint::from_seconds(2.0), [] {});
    q.pop();  // fires id
    EXPECT_FALSE(q.cancel(id));
    EXPECT_EQ(q.size(), 1u);
    q.pop();
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextTimeSkipsCancelled) {
    EventQueue q;
    const EventId id = q.schedule(TimePoint::from_seconds(1.0), [] {});
    q.schedule(TimePoint::from_seconds(2.0), [] {});
    q.cancel(id);
    EXPECT_EQ(q.next_time(), TimePoint::from_seconds(2.0));
}

TEST(EventQueue, PendingReflectsLifecycle) {
    EventQueue q;
    const EventId id = q.schedule(TimePoint::from_seconds(1.0), [] {});
    EXPECT_TRUE(q.pending(id));
    q.cancel(id);
    EXPECT_FALSE(q.pending(id));
}

TEST(EventQueue, ClearDropsEverything) {
    EventQueue q;
    q.schedule(TimePoint::from_seconds(1.0), [] {});
    q.schedule(TimePoint::from_seconds(2.0), [] {});
    q.clear();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.next_time(), TimePoint::max());
}

TEST(Simulator, NowAdvancesWithEvents) {
    Simulator sim;
    std::vector<double> times;
    sim.schedule_at(TimePoint::from_seconds(1.0), [&] { times.push_back(sim.now().to_seconds()); });
    sim.schedule_at(TimePoint::from_seconds(2.5), [&] { times.push_back(sim.now().to_seconds()); });
    sim.run();
    EXPECT_EQ(times, (std::vector<double>{1.0, 2.5}));
}

TEST(Simulator, ScheduleInIsRelative) {
    Simulator sim;
    double fired_at = -1.0;
    sim.schedule_at(TimePoint::from_seconds(1.0), [&] {
        sim.schedule_in(Duration::seconds(2.0), [&] { fired_at = sim.now().to_seconds(); });
    });
    sim.run();
    EXPECT_DOUBLE_EQ(fired_at, 3.0);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
    Simulator sim;
    int count = 0;
    sim.schedule_at(TimePoint::from_seconds(1.0), [&] { ++count; });
    sim.schedule_at(TimePoint::from_seconds(5.0), [&] { ++count; });
    sim.run_until(TimePoint::from_seconds(2.0));
    EXPECT_EQ(count, 1);
    EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 2.0);
    EXPECT_EQ(sim.pending_events(), 1u);
    sim.run();
    EXPECT_EQ(count, 2);
}

TEST(Simulator, EventAtHorizonFires) {
    Simulator sim;
    bool fired = false;
    sim.schedule_at(TimePoint::from_seconds(2.0), [&] { fired = true; });
    sim.run_until(TimePoint::from_seconds(2.0));
    EXPECT_TRUE(fired);
}

TEST(Simulator, SchedulingInPastThrows) {
    Simulator sim;
    sim.schedule_at(TimePoint::from_seconds(5.0), [&] {
        EXPECT_THROW(sim.schedule_at(TimePoint::from_seconds(1.0), [] {}), std::logic_error);
        EXPECT_THROW(sim.schedule_in(Duration::zero() - Duration::millis(1), [] {}),
                     std::logic_error);
    });
    sim.run();
}

TEST(Simulator, StopHaltsRun) {
    Simulator sim;
    int count = 0;
    for (int i = 1; i <= 10; ++i) {
        sim.schedule_at(TimePoint::from_seconds(i), [&] {
            if (++count == 3) sim.stop();
        });
    }
    sim.run();
    EXPECT_EQ(count, 3);
    EXPECT_EQ(sim.pending_events(), 7u);
}

TEST(Simulator, ExecutedEventsCounts) {
    Simulator sim;
    for (int i = 1; i <= 4; ++i) {
        sim.schedule_at(TimePoint::from_seconds(i), [] {});
    }
    sim.run();
    EXPECT_EQ(sim.executed_events(), 4u);
}

TEST(Simulator, CancelledEventDoesNotFire) {
    Simulator sim;
    bool fired = false;
    const EventId id = sim.schedule_at(TimePoint::from_seconds(1.0), [&] { fired = true; });
    EXPECT_TRUE(sim.cancel(id));
    sim.run();
    EXPECT_FALSE(fired);
}

TEST(Logger, RespectsLevel) {
    Logger& logger = Logger::instance();
    std::ostringstream sink;
    logger.set_sink(&sink);
    logger.set_level(LogLevel::Warn);
    log_if(LogLevel::Debug, TimePoint::from_seconds(1.0), "test", [] { return "hidden"; });
    log_if(LogLevel::Error, TimePoint::from_seconds(2.0), "test", [] { return "shown"; });
    logger.set_sink(nullptr);
    EXPECT_EQ(sink.str().find("hidden"), std::string::npos);
    EXPECT_NE(sink.str().find("shown"), std::string::npos);
    EXPECT_NE(sink.str().find("test"), std::string::npos);
}

TEST(Logger, OffSilencesEverything) {
    Logger& logger = Logger::instance();
    std::ostringstream sink;
    logger.set_sink(&sink);
    logger.set_level(LogLevel::Off);
    log_if(LogLevel::Error, TimePoint::origin(), "x", [] { return "nope"; });
    logger.set_sink(nullptr);
    logger.set_level(LogLevel::Warn);
    EXPECT_TRUE(sink.str().empty());
}

}  // namespace
}  // namespace cocoa::sim
