#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <memory>
#include <random>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/callback.hpp"
#include "sim/event_queue.hpp"
#include "sim/log.hpp"
#include "sim/pool.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace cocoa::sim {
namespace {

TEST(Duration, Conversions) {
    EXPECT_EQ(Duration::seconds(1.5).to_nanos(), 1'500'000'000);
    EXPECT_EQ(Duration::millis(2).to_nanos(), 2'000'000);
    EXPECT_EQ(Duration::micros(3).to_nanos(), 3'000);
    EXPECT_DOUBLE_EQ(Duration::seconds(2.5).to_seconds(), 2.5);
    EXPECT_DOUBLE_EQ(Duration::millis(1500).to_seconds(), 1.5);
    EXPECT_DOUBLE_EQ(Duration::minutes(30).to_seconds(), 1800.0);
}

TEST(Duration, Arithmetic) {
    const Duration a = Duration::seconds(2.0);
    const Duration b = Duration::seconds(0.5);
    EXPECT_EQ((a + b).to_seconds(), 2.5);
    EXPECT_EQ((a - b).to_seconds(), 1.5);
    EXPECT_EQ((a * std::int64_t{3}).to_seconds(), 6.0);
    EXPECT_EQ((a / std::int64_t{4}).to_seconds(), 0.5);
    EXPECT_DOUBLE_EQ(a / b, 4.0);
}

TEST(Duration, Comparisons) {
    EXPECT_LT(Duration::seconds(1.0), Duration::seconds(2.0));
    EXPECT_EQ(Duration::seconds(1.0), Duration::millis(1000));
    EXPECT_TRUE(Duration::zero().is_zero());
    EXPECT_TRUE((Duration::zero() - Duration::millis(1)).is_negative());
}

TEST(Duration, RoundsToNearestNanosecond) {
    EXPECT_EQ(Duration::seconds(1e-9).to_nanos(), 1);
    EXPECT_EQ(Duration::seconds(1.4e-9).to_nanos(), 1);
    EXPECT_EQ(Duration::seconds(1.6e-9).to_nanos(), 2);
}

TEST(TimePoint, Arithmetic) {
    const TimePoint t0 = TimePoint::origin();
    const TimePoint t1 = t0 + Duration::seconds(5.0);
    EXPECT_DOUBLE_EQ(t1.to_seconds(), 5.0);
    EXPECT_EQ(t1 - t0, Duration::seconds(5.0));
    EXPECT_EQ(t1 - Duration::seconds(2.0), TimePoint::from_seconds(3.0));
    EXPECT_LT(t0, t1);
}

TEST(TimeStream, Formats) {
    std::ostringstream ss;
    ss << Duration::seconds(1.5) << ' ' << TimePoint::from_seconds(2.0);
    EXPECT_EQ(ss.str(), "1.5s @2s");
}

TEST(RandomStream, UniformBounds) {
    RandomStream rng(42);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(2.0, 5.0);
        EXPECT_GE(u, 2.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(RandomStream, UniformIntBounds) {
    RandomStream rng(42);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.uniform_int(0, 7);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 7);
        saw_lo |= v == 0;
        saw_hi |= v == 7;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RandomStream, GaussianMoments) {
    RandomStream rng(7);
    double sum = 0.0;
    double sum_sq = 0.0;
    constexpr int kN = 20000;
    for (int i = 0; i < kN; ++i) {
        const double g = rng.gaussian(10.0, 2.0);
        sum += g;
        sum_sq += g * g;
    }
    const double mean = sum / kN;
    const double var = sum_sq / kN - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.1);
    EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(RandomStream, ZeroSigmaGaussianIsMean) {
    RandomStream rng(1);
    EXPECT_DOUBLE_EQ(rng.gaussian(3.5, 0.0), 3.5);
}

TEST(RandomStream, ChanceExtremes) {
    RandomStream rng(1);
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
}

TEST(RngManager, SameNameSameStream) {
    const RngManager mgr(123);
    RandomStream a = mgr.stream("mobility");
    RandomStream b = mgr.stream("mobility");
    for (int i = 0; i < 100; ++i) {
        EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
    }
}

TEST(RngManager, DifferentNamesDiffer) {
    const RngManager mgr(123);
    RandomStream a = mgr.stream("mobility");
    RandomStream b = mgr.stream("phy");
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0)) ++equal;
    }
    EXPECT_LT(equal, 5);
}

TEST(RngManager, IndexedStreamsDiffer) {
    const RngManager mgr(9);
    RandomStream a = mgr.stream("odometry", 1);
    RandomStream b = mgr.stream("odometry", 2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0)) ++equal;
    }
    EXPECT_LT(equal, 5);
}

TEST(RngManager, SeedChangesStreams) {
    RandomStream a = RngManager(1).stream("x");
    RandomStream b = RngManager(2).stream("x");
    EXPECT_NE(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
}

TEST(EventQueue, FiresInTimeOrder) {
    EventQueue q;
    std::vector<int> order;
    q.schedule(TimePoint::from_seconds(3.0), [&] { order.push_back(3); });
    q.schedule(TimePoint::from_seconds(1.0), [&] { order.push_back(1); });
    q.schedule(TimePoint::from_seconds(2.0), [&] { order.push_back(2); });
    while (!q.empty()) q.pop().callback();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoAtEqualTimes) {
    EventQueue q;
    std::vector<int> order;
    const TimePoint t = TimePoint::from_seconds(1.0);
    for (int i = 0; i < 5; ++i) {
        q.schedule(t, [&order, i] { order.push_back(i); });
    }
    while (!q.empty()) q.pop().callback();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsFiring) {
    EventQueue q;
    bool fired = false;
    const EventId id = q.schedule(TimePoint::from_seconds(1.0), [&] { fired = true; });
    EXPECT_TRUE(q.cancel(id));
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(fired);
}

TEST(EventQueue, DoubleCancelFails) {
    EventQueue q;
    const EventId id = q.schedule(TimePoint::from_seconds(1.0), [] {});
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterFireFails) {
    EventQueue q;
    const EventId id = q.schedule(TimePoint::from_seconds(1.0), [] {});
    q.pop().callback();
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelInvalidIdFails) {
    EventQueue q;
    EXPECT_FALSE(q.cancel(EventId{}));
}

TEST(EventQueue, StaleCancelDoesNotCorruptCount) {
    EventQueue q;
    const EventId id = q.schedule(TimePoint::from_seconds(1.0), [] {});
    q.schedule(TimePoint::from_seconds(2.0), [] {});
    q.pop();  // fires id
    EXPECT_FALSE(q.cancel(id));
    EXPECT_EQ(q.size(), 1u);
    q.pop();
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextTimeSkipsCancelled) {
    EventQueue q;
    const EventId id = q.schedule(TimePoint::from_seconds(1.0), [] {});
    q.schedule(TimePoint::from_seconds(2.0), [] {});
    q.cancel(id);
    EXPECT_EQ(q.next_time(), TimePoint::from_seconds(2.0));
}

TEST(EventQueue, PendingReflectsLifecycle) {
    EventQueue q;
    const EventId id = q.schedule(TimePoint::from_seconds(1.0), [] {});
    EXPECT_TRUE(q.pending(id));
    q.cancel(id);
    EXPECT_FALSE(q.pending(id));
}

TEST(EventQueue, ClearDropsEverything) {
    EventQueue q;
    q.schedule(TimePoint::from_seconds(1.0), [] {});
    q.schedule(TimePoint::from_seconds(2.0), [] {});
    q.clear();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.next_time(), TimePoint::max());
}

TEST(InplaceCallback, SmallCaptureStaysInline) {
    int hits = 0;
    InplaceCallback cb([&hits] { ++hits; });
    EXPECT_TRUE(static_cast<bool>(cb));
    EXPECT_FALSE(cb.on_heap());
    cb();
    EXPECT_EQ(hits, 1);
}

TEST(InplaceCallback, LargeCaptureFallsBackToHeap) {
    std::array<char, 128> big{};
    big[0] = 42;
    char seen = 0;
    InplaceCallback cb([big, &seen] { seen = big[0]; });
    EXPECT_TRUE(cb.on_heap());
    cb();
    EXPECT_EQ(seen, 42);
}

TEST(InplaceCallback, MoveTransfersOwnership) {
    int hits = 0;
    InplaceCallback a([&hits] { ++hits; });
    InplaceCallback b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
    b();
    EXPECT_EQ(hits, 1);
    InplaceCallback c;
    c = std::move(b);
    c();
    EXPECT_EQ(hits, 2);
}

TEST(InplaceCallback, DestructionReleasesCaptures) {
    auto token = std::make_shared<int>(7);
    {
        InplaceCallback cb([token] { (void)*token; });
        EXPECT_EQ(token.use_count(), 2);
    }
    EXPECT_EQ(token.use_count(), 1);
    // reset() releases too, both for inline and heap storage.
    std::array<char, 128> big{};
    InplaceCallback heap_cb([token, big] { (void)*token; (void)big; });
    EXPECT_EQ(token.use_count(), 2);
    heap_cb.reset();
    EXPECT_EQ(token.use_count(), 1);
    EXPECT_FALSE(static_cast<bool>(heap_cb));
}

TEST(InplaceCallback, SharedPtrCaptureFitsInline) {
    // The Medium's CCA callback shape: this + shared_ptr + scalars must stay
    // on the fast path or steady-state traffic allocates per event.
    auto frame = std::make_shared<int>(1);
    const double rssi = -60.0;
    const bool decodable = true;
    const void* self = &rssi;
    InplaceCallback cb([self, frame, rssi, decodable] {
        (void)self; (void)*frame; (void)rssi; (void)decodable;
    });
    EXPECT_FALSE(cb.on_heap());
}

TEST(EventQueue, GenerationReuseSafety) {
    EventQueue q;
    int fired = 0;
    const EventId stale = q.schedule(TimePoint::from_seconds(1.0), [&] { ++fired; });
    q.pop().callback();  // slot freed, generation bumped
    EXPECT_EQ(fired, 1);

    // The next schedule recycles the same slot; the stale id must neither
    // report pending nor cancel the new occupant.
    const EventId fresh = q.schedule(TimePoint::from_seconds(2.0), [&] { ++fired; });
    EXPECT_NE(stale, fresh);
    EXPECT_FALSE(q.pending(stale));
    EXPECT_TRUE(q.pending(fresh));
    EXPECT_FALSE(q.cancel(stale));
    EXPECT_EQ(q.size(), 1u);
    EXPECT_TRUE(q.cancel(fresh));
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, StaleIdsDieAcrossClear) {
    EventQueue q;
    const EventId before = q.schedule(TimePoint::from_seconds(1.0), [] {});
    q.clear();
    EXPECT_FALSE(q.pending(before));
    EXPECT_FALSE(q.cancel(before));
    // seq keeps counting across clear(), so FIFO order stays monotone for a
    // reused queue (the documented invariant).
    std::vector<int> order;
    const TimePoint t = TimePoint::from_seconds(3.0);
    q.schedule(t, [&] { order.push_back(1); });
    q.schedule(t, [&] { order.push_back(2); });
    while (!q.empty()) q.pop().callback();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, FifoGoldenAtEqualTimesWithCancels) {
    // Golden ordering: three timestamps, ten events each, every third event
    // cancelled. Survivors must fire grouped by time, FIFO within a time.
    EventQueue q;
    std::vector<int> order;
    std::vector<EventId> ids;
    for (int i = 0; i < 30; ++i) {
        const TimePoint t = TimePoint::from_seconds(1.0 + i % 3);
        ids.push_back(q.schedule(t, [&order, i] { order.push_back(i); }));
    }
    for (int i = 0; i < 30; i += 3) EXPECT_TRUE(q.cancel(ids[static_cast<std::size_t>(i)]));
    while (!q.empty()) q.pop().callback();
    // Survivors grouped by timestamp (i % 3 picks the time), FIFO within.
    std::vector<int> expected;
    for (int t = 0; t < 3; ++t) {
        for (int i = 0; i < 30; ++i) {
            if (i % 3 == t && i % 3 != 0) expected.push_back(i);
        }
    }
    EXPECT_EQ(order, expected);
}

TEST(EventQueue, StatsTrackSchedulingAndCancellation) {
    EventQueue q;
    const EventId a = q.schedule(TimePoint::from_seconds(1.0), [] {});
    q.schedule(TimePoint::from_seconds(2.0), [] {});
    q.schedule(TimePoint::from_seconds(3.0), [] {});
    EXPECT_EQ(q.stats().scheduled, 3u);
    EXPECT_EQ(q.stats().peak_pending, 3u);
    EXPECT_EQ(q.stats().sbo_misses, 0u);
    EXPECT_TRUE(q.cancel(a));
    EXPECT_FALSE(q.cancel(a));
    EXPECT_EQ(q.stats().cancelled, 1u);
    while (!q.empty()) q.pop();
    EXPECT_EQ(q.stats().peak_pending, 3u);  // high-water mark sticks

    std::array<char, 128> big{};
    q.schedule(TimePoint::from_seconds(4.0), [big] { (void)big; });
    EXPECT_EQ(q.stats().sbo_misses, 1u);
}

TEST(EventQueue, SteadyStateChurnRecyclesSlots) {
    // A carrier-sense-like workload: schedule/cancel/fire cycling through a
    // bounded working set must not grow the slot arena past the high-water
    // mark (peak_pending tracks it).
    EventQueue q;
    double t = 1.0;
    std::vector<EventId> live;
    for (int round = 0; round < 1000; ++round) {
        live.push_back(q.schedule(TimePoint::from_seconds(t + 1.0), [] {}));
        live.push_back(q.schedule(TimePoint::from_seconds(t + 2.0), [] {}));
        q.cancel(live[live.size() - 2]);
        if (!q.empty()) {
            q.pop();
            t += 0.5;
        }
    }
    EXPECT_LE(q.stats().peak_pending, 16u);
}

/// Randomized schedule/cancel/reschedule stress: the new kernel must fire
/// the exact same events at the exact same times in the exact same order as
/// the legacy oracle, and agree on every cancel/pending verdict along the way.
TEST(EventQueue, RandomizedStressMatchesLegacyOracle) {
    EventQueue nq;
    LegacyEventQueue lq;
    std::mt19937_64 rng(0xC0C0A5EEDull);

    struct LiveEvent {
        EventId new_id;
        EventId legacy_id;
        int payload;
    };
    std::vector<LiveEvent> live;
    std::vector<int> fired_new;
    std::vector<int> fired_legacy;
    TimePoint now = TimePoint::origin();
    int next_payload = 0;

    const auto schedule_one = [&] {
        // Mix of distinct and colliding times to exercise FIFO tie-breaks.
        const std::int64_t offset_ns = static_cast<std::int64_t>(rng() % 5) * 500'000;
        const TimePoint t = now + Duration::nanos(1 + offset_ns);
        const int payload = next_payload++;
        live.push_back({nq.schedule(t, [&fired_new, payload] { fired_new.push_back(payload); }),
                        lq.schedule(t, [&fired_legacy, payload] { fired_legacy.push_back(payload); }),
                        payload});
    };

    for (int op = 0; op < 20000; ++op) {
        const std::uint64_t dice = rng() % 10;
        if (dice < 5 || nq.empty()) {
            schedule_one();
        } else if (dice < 7 && !live.empty()) {
            const std::size_t pick = rng() % live.size();
            const bool nc = nq.cancel(live[pick].new_id);
            const bool lc = lq.cancel(live[pick].legacy_id);
            ASSERT_EQ(nc, lc) << "cancel verdict diverged at op " << op;
            live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
        } else if (dice < 8 && !live.empty()) {
            const std::size_t pick = rng() % live.size();
            ASSERT_EQ(nq.pending(live[pick].new_id), lq.pending(live[pick].legacy_id));
        } else {
            ASSERT_EQ(nq.empty(), lq.empty());
            ASSERT_EQ(nq.next_time(), lq.next_time());
            auto nf = nq.pop();
            auto lf = lq.pop();
            ASSERT_EQ(nf.time, lf.time);
            now = nf.time;
            nf.callback();
            lf.callback();
            ASSERT_EQ(fired_new.back(), fired_legacy.back());
        }
        ASSERT_EQ(nq.size(), lq.size());
    }
    // Drain both queues completely and compare the full firing history.
    while (!nq.empty()) {
        ASSERT_FALSE(lq.empty());
        ASSERT_EQ(nq.next_time(), lq.next_time());
        nq.pop().callback();
        lq.pop().callback();
    }
    EXPECT_TRUE(lq.empty());
    EXPECT_EQ(fired_new, fired_legacy);
    // Both kernels maintain the same stats contract.
    EXPECT_EQ(nq.stats().scheduled, lq.stats().scheduled);
    EXPECT_EQ(nq.stats().cancelled, lq.stats().cancelled);
    EXPECT_EQ(nq.stats().sbo_misses, lq.stats().sbo_misses);
    EXPECT_EQ(nq.stats().peak_pending, lq.stats().peak_pending);
}

TEST(LegacyEventQueue, BasicContractMatchesDocs) {
    LegacyEventQueue q;
    std::vector<int> order;
    const TimePoint t = TimePoint::from_seconds(1.0);
    q.schedule(t, [&] { order.push_back(0); });
    const EventId id = q.schedule(t, [&] { order.push_back(1); });
    q.schedule(t, [&] { order.push_back(2); });
    EXPECT_TRUE(q.pending(id));
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.pending(id));
    while (!q.empty()) q.pop().callback();
    EXPECT_EQ(order, (std::vector<int>{0, 2}));
    EXPECT_EQ(q.stats().scheduled, 3u);
    EXPECT_EQ(q.stats().cancelled, 1u);
}

TEST(SlabPool, RecyclesBlocksThroughFreeList) {
    // Acquire/release cycles beyond the first must come from the free list.
    // Run under ASan in CI: any use-after-free or mismatched dealloc aborts.
    ObjectPool<std::pair<double, double>> pool;
    for (int round = 0; round < 100; ++round) {
        auto a = pool.acquire(1.0 * round, 2.0 * round);
        auto b = pool.acquire(3.0 * round, 4.0 * round);
        EXPECT_EQ(a->first, 1.0 * round);
        EXPECT_EQ(b->second, 4.0 * round);
    }
    const PoolStats& stats = pool.stats();
    EXPECT_EQ(stats.reused + stats.fresh, 200u);
    EXPECT_EQ(stats.fresh, 2u);  // working set of 2, everything else recycled
    EXPECT_EQ(stats.oversize, 0u);
}

TEST(SlabPool, BlocksOutliveThePool) {
    // The allocator copy inside the shared_ptr control block keeps the core
    // alive: dropping the pool (and the last shared_ptr after it) must be
    // clean under ASan. This is the Scenario teardown order — world (and its
    // pools) dies before the queue drops its frame references.
    std::shared_ptr<std::pair<double, double>> survivor;
    {
        ObjectPool<std::pair<double, double>> pool;
        survivor = pool.acquire(1.5, 2.5);
    }
    EXPECT_EQ(survivor->second, 2.5);
    survivor.reset();
}

TEST(SlabPool, PooledVectorRecyclesConstantSizeBlocks) {
    // The AirFrame::sensed_by shape: same-size vector allocated per frame.
    auto core = std::make_shared<SlabCore>();
    using PooledVec = std::vector<std::uint8_t, PoolAllocator<std::uint8_t>>;
    for (int round = 0; round < 50; ++round) {
        PooledVec v(32, std::uint8_t{0}, PoolAllocator<std::uint8_t>(core));
        v[31] = 9;
        EXPECT_EQ(v[31], 9);
    }
    EXPECT_EQ(core->stats().fresh, 1u);
    EXPECT_EQ(core->stats().reused, 49u);
}

TEST(SlabPool, OversizeRequestsBypassTheFreeList) {
    auto core = std::make_shared<SlabCore>();
    PoolAllocator<std::uint8_t> alloc(core);
    std::uint8_t* small = alloc.allocate(16);  // learns block size 16
    std::uint8_t* big = alloc.allocate(64);    // larger: plain heap
    alloc.deallocate(big, 64);
    alloc.deallocate(small, 16);
    EXPECT_EQ(core->stats().fresh, 1u);
    EXPECT_EQ(core->stats().oversize, 1u);
    // The small block recycles; the oversize one never enters the free list.
    std::uint8_t* again = alloc.allocate(16);
    alloc.deallocate(again, 16);
    EXPECT_EQ(core->stats().reused, 1u);
}

TEST(SlabPool, NullCoreDegradesToPlainNew) {
    PoolAllocator<int> alloc;  // default: no core
    int* p = alloc.allocate(4);
    p[3] = 11;
    EXPECT_EQ(p[3], 11);
    alloc.deallocate(p, 4);
}

TEST(Simulator, NowAdvancesWithEvents) {
    Simulator sim;
    std::vector<double> times;
    sim.schedule_at(TimePoint::from_seconds(1.0), [&] { times.push_back(sim.now().to_seconds()); });
    sim.schedule_at(TimePoint::from_seconds(2.5), [&] { times.push_back(sim.now().to_seconds()); });
    sim.run();
    EXPECT_EQ(times, (std::vector<double>{1.0, 2.5}));
}

TEST(Simulator, ScheduleInIsRelative) {
    Simulator sim;
    double fired_at = -1.0;
    sim.schedule_at(TimePoint::from_seconds(1.0), [&] {
        sim.schedule_in(Duration::seconds(2.0), [&] { fired_at = sim.now().to_seconds(); });
    });
    sim.run();
    EXPECT_DOUBLE_EQ(fired_at, 3.0);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
    Simulator sim;
    int count = 0;
    sim.schedule_at(TimePoint::from_seconds(1.0), [&] { ++count; });
    sim.schedule_at(TimePoint::from_seconds(5.0), [&] { ++count; });
    sim.run_until(TimePoint::from_seconds(2.0));
    EXPECT_EQ(count, 1);
    EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 2.0);
    EXPECT_EQ(sim.pending_events(), 1u);
    sim.run();
    EXPECT_EQ(count, 2);
}

TEST(Simulator, EventAtHorizonFires) {
    Simulator sim;
    bool fired = false;
    sim.schedule_at(TimePoint::from_seconds(2.0), [&] { fired = true; });
    sim.run_until(TimePoint::from_seconds(2.0));
    EXPECT_TRUE(fired);
}

TEST(Simulator, SchedulingInPastThrows) {
    Simulator sim;
    sim.schedule_at(TimePoint::from_seconds(5.0), [&] {
        EXPECT_THROW(sim.schedule_at(TimePoint::from_seconds(1.0), [] {}), std::logic_error);
        EXPECT_THROW(sim.schedule_in(Duration::zero() - Duration::millis(1), [] {}),
                     std::logic_error);
    });
    sim.run();
}

TEST(Simulator, StopHaltsRun) {
    Simulator sim;
    int count = 0;
    for (int i = 1; i <= 10; ++i) {
        sim.schedule_at(TimePoint::from_seconds(i), [&] {
            if (++count == 3) sim.stop();
        });
    }
    sim.run();
    EXPECT_EQ(count, 3);
    EXPECT_EQ(sim.pending_events(), 7u);
}

TEST(Simulator, ExecutedEventsCounts) {
    Simulator sim;
    for (int i = 1; i <= 4; ++i) {
        sim.schedule_at(TimePoint::from_seconds(i), [] {});
    }
    sim.run();
    EXPECT_EQ(sim.executed_events(), 4u);
}

TEST(Simulator, CancelledEventDoesNotFire) {
    Simulator sim;
    bool fired = false;
    const EventId id = sim.schedule_at(TimePoint::from_seconds(1.0), [&] { fired = true; });
    EXPECT_TRUE(sim.cancel(id));
    sim.run();
    EXPECT_FALSE(fired);
}

TEST(Logger, RespectsLevel) {
    Logger& logger = Logger::instance();
    std::ostringstream sink;
    logger.set_sink(&sink);
    logger.set_level(LogLevel::Warn);
    log_if(LogLevel::Debug, TimePoint::from_seconds(1.0), "test", [] { return "hidden"; });
    log_if(LogLevel::Error, TimePoint::from_seconds(2.0), "test", [] { return "shown"; });
    logger.set_sink(nullptr);
    EXPECT_EQ(sink.str().find("hidden"), std::string::npos);
    EXPECT_NE(sink.str().find("shown"), std::string::npos);
    EXPECT_NE(sink.str().find("test"), std::string::npos);
}

TEST(Logger, OffSilencesEverything) {
    Logger& logger = Logger::instance();
    std::ostringstream sink;
    logger.set_sink(&sink);
    logger.set_level(LogLevel::Off);
    log_if(LogLevel::Error, TimePoint::origin(), "x", [] { return "nope"; });
    logger.set_sink(nullptr);
    logger.set_level(LogLevel::Warn);
    EXPECT_TRUE(sink.str().empty());
}

}  // namespace
}  // namespace cocoa::sim
