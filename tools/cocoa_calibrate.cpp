// cocoa_calibrate — runs the offline calibration phase (§2.2) and writes the
// PDF Table file that a deployment would install on every robot:
//   cocoa_calibrate --tx-power 15 --samples 100 --out pdf_table.txt
// Also prints the fitted bins and the Gaussian regime boundary.

#include <fstream>
#include <iostream>

#include "cli/args.hpp"
#include "metrics/table.hpp"
#include "phy/channel.hpp"
#include "phy/pdf_table.hpp"
#include "sim/random.hpp"

using namespace cocoa;

int main(int argc, char** argv) {
    double tx_power_dbm = 15.0;
    double max_distance = 160.0;
    double step = 0.25;
    int samples = 100;
    std::uint64_t seed = 7;
    std::string out_path;
    bool verbose = false;

    cli::ArgParser parser("cocoa_calibrate",
                          "offline RSSI-to-distance PDF Table calibration");
    parser.add_option("tx-power", "transmit power in dBm (default 15)", &tx_power_dbm)
        .add_option("max-distance", "sweep limit in metres (default 160)", &max_distance)
        .add_option("step", "sweep step in metres (default 0.25)", &step)
        .add_option("samples", "RSSI samples per distance (default 100)", &samples)
        .add_option("seed", "measurement RNG seed (default 7)", &seed)
        .add_option("out", "write the PDF Table to this file", &out_path)
        .add_flag("verbose", "print every usable bin", &verbose);
    if (!parser.parse(argc, argv, std::cout, std::cerr)) {
        return parser.failed() ? 2 : 0;
    }

    phy::ChannelConfig channel_config;
    channel_config.tx_power_dbm = tx_power_dbm;
    phy::CalibrationConfig cal;
    cal.max_distance_m = max_distance;
    cal.distance_step_m = step;
    cal.samples_per_distance = samples;

    try {
        const phy::Channel channel(channel_config);
        const phy::PdfTable table = phy::PdfTable::calibrate(
            channel, cal, sim::RngManager(seed).stream("calibration"));

        std::cout << "channel: tx " << tx_power_dbm << " dBm, nominal range "
                  << metrics::fmt(channel.max_range_m(), 1) << " m\n"
                  << "table: " << table.bin_count() << " bins ("
                  << table.usable_bin_count() << " usable), RSSI "
                  << table.min_rssi_dbm() << ".." << table.max_rssi_dbm() << " dBm\n";
        if (const auto boundary = table.weakest_gaussian_rssi()) {
            const auto* pdf = table.lookup(*boundary);
            std::cout << "Gaussian regime down to " << *boundary << " dBm (mean "
                      << metrics::fmt(pdf->mean_m, 1) << " m)\n";
        }

        if (verbose) {
            metrics::Table t({"rssi (dBm)", "mean (m)", "sigma (m)", "n", "gaussian"});
            for (int rssi = table.max_rssi_dbm(); rssi >= table.min_rssi_dbm(); --rssi) {
                const auto* pdf = table.lookup(rssi);
                if (pdf == nullptr) continue;
                t.add_row({std::to_string(rssi), metrics::fmt(pdf->mean_m),
                           metrics::fmt(pdf->sigma_m), std::to_string(pdf->sample_count),
                           pdf->gaussian_fit_ok ? "yes" : "no"});
            }
            t.print(std::cout);
        }

        if (!out_path.empty()) {
            std::ofstream out(out_path);
            if (!out) {
                std::cerr << "cocoa_calibrate: cannot write " << out_path << "\n";
                return 2;
            }
            table.save(out);
            std::cout << "wrote " << out_path << "\n";
        }
    } catch (const std::exception& e) {
        std::cerr << "cocoa_calibrate: " << e.what() << "\n";
        return 2;
    }
    return 0;
}
