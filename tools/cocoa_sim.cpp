// cocoa_sim — command-line front end for the CoCoA simulator.
//
// Runs one scenario with the paper's defaults (overridable via flags),
// prints a summary, and optionally dumps CSV series for plotting:
//   cocoa_sim --robots 50 --anchors 25 --period 100 --vmax 2
//             --mode cocoa --csv out/run1
// writes out/run1_avg_error.csv and out/run1_summary.csv.
//
// With --reps N (N > 1) the scenario instead runs N independent
// replications on the parallel replication engine (--threads workers) and
// prints mean / stddev / 95% CI aggregates. Aggregates are byte-identical
// for any --threads value.

#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <utility>
#include <vector>

#include "cli/args.hpp"
#include "core/scenario.hpp"
#include "core/swarm.hpp"
#include "est/estimator.hpp"
#include "exp/backend_sweep.hpp"
#include "exp/checkpoint.hpp"
#include "exp/replication.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "metrics/table.hpp"
#include "obs/obs.hpp"
#include "sim/checkpoint.hpp"

using namespace cocoa;

namespace {

int fail(const std::string& message) {
    std::cerr << "cocoa_sim: " << message << "\n";
    return 2;
}

/// Counter table summed over nodes ("node.<id>.mac.*" folds into "mac.*"),
/// printed for --counters. Deterministic: names sorted, values exact.
void print_counters(const std::vector<std::pair<std::string, std::uint64_t>>& snapshot) {
    metrics::Table table({"counter", "total"});
    for (const auto& [name, value] : obs::aggregate_node_counters(snapshot)) {
        table.add_row({name, std::to_string(value)});
    }
    std::cout << "\ncounters (summed over nodes):\n";
    table.print(std::cout);
}

/// Kernel throughput/allocation table for --kernel-stats. Every value except
/// the events/sec rate comes from deterministic counters (kernel.events.* /
/// kernel.pool.*); the rate folds in measured wall time, so scripts diffing
/// output across runs should filter it like the "simulation work" line.
void print_kernel_stats(
    const std::vector<std::pair<std::string, std::uint64_t>>& snapshot,
    std::uint64_t executed, double wall_seconds) {
    const std::map<std::string, std::uint64_t> kv(snapshot.begin(), snapshot.end());
    const auto get = [&kv](const std::string& name) -> std::uint64_t {
        const auto it = kv.find(name);
        return it == kv.end() ? 0 : it->second;
    };
    const auto pool_row = [&get](const std::string& pool) {
        const std::string base = "kernel.pool." + pool;
        const std::uint64_t reused = get(base + ".reused");
        const std::uint64_t fresh = get(base + ".fresh");
        const std::uint64_t oversize = get(base + ".oversize");
        const std::uint64_t total = reused + fresh + oversize;
        std::string cells = std::to_string(reused) + " / " + std::to_string(fresh) +
                            " / " + std::to_string(oversize);
        if (total > 0) {
            cells += "  (" +
                     metrics::fmt(100.0 * static_cast<double>(reused) /
                                  static_cast<double>(total)) +
                     "% hit)";
        }
        return cells;
    };

    metrics::Table table({"kernel stat", "value"});
    table.add_row({"executed events", std::to_string(executed)});
    table.add_row({"events/sec",
                   wall_seconds > 0.0
                       ? metrics::fmt(static_cast<double>(executed) / wall_seconds)
                       : std::string("-")});
    table.add_row({"scheduled", std::to_string(get("kernel.events.scheduled"))});
    table.add_row({"cancelled", std::to_string(get("kernel.events.cancelled"))});
    table.add_row({"peak pending", std::to_string(get("kernel.events.peak_pending"))});
    table.add_row({"callback SBO misses", std::to_string(get("kernel.events.sbo_miss"))});
    table.add_row({"frame pool (reused/fresh/oversize)", pool_row("frame")});
    table.add_row({"sensed pool (reused/fresh/oversize)", pool_row("sensed")});
    table.add_row({"packet pool (reused/fresh/oversize)", pool_row("packet")});
    std::cout << "\nkernel stats:\n";
    table.print(std::cout);
}

/// Single-run resilience table, printed only when a fault plan was active —
/// an unfaulted run's output stays byte-identical to the pre-fault tool.
void print_resilience(const fault::ResilienceReport& rep) {
    const auto opt_fmt = [](const std::optional<double>& v) {
        return v ? metrics::fmt(*v) : std::string("-");
    };
    metrics::Table table({"resilience metric", "value"});
    table.add_row({"availability (err <= " + metrics::fmt(rep.avail_threshold_m) + " m)",
                   metrics::fmt(rep.availability)});
    table.add_row({"  before first fault", metrics::fmt(rep.avail_before)});
    table.add_row({"  during fault intervals", metrics::fmt(rep.avail_during)});
    table.add_row({"  after recovery", metrics::fmt(rep.avail_after)});
    table.add_row({"error p50/p90 during (m)",
                   opt_fmt(rep.p50_during_m) + " / " + opt_fmt(rep.p90_during_m)});
    table.add_row({"error p50/p90 after (m)",
                   opt_fmt(rep.p50_after_m) + " / " + opt_fmt(rep.p90_after_m)});
    table.add_row({"mean time to reacquire (s)", metrics::fmt(rep.mean_reacquire_s)});
    table.add_row({"reacquired / never",
                   std::to_string(rep.reacquired) + " / " +
                       std::to_string(rep.never_reacquired)});
    std::cout << "\nresilience:\n";
    table.print(std::cout);
}

/// Swarm-family summary + the machine-readable swarm-json line (shared by
/// the straight --nodes path and --restore of a swarm blob).
void print_swarm(const core::SwarmResult& r, double wall_s, bool quiet) {
    const double events_per_node =
        static_cast<double>(r.executed_events) / static_cast<double>(r.nodes);
    if (!quiet) {
        metrics::Table table({"swarm metric", "value"});
        table.add_row({"nodes", std::to_string(r.nodes)});
        table.add_row({"area side (m)", metrics::fmt(r.area_side_m)});
        table.add_row({"simulated (s)", metrics::fmt(r.sim_seconds)});
        table.add_row({"wall (s)", metrics::fmt(wall_s)});
        table.add_row({"events executed", std::to_string(r.executed_events)});
        table.add_row({"events per node", metrics::fmt(events_per_node)});
        table.add_row({"frames on air", std::to_string(r.medium_stats.frames_sent)});
        table.add_row({"frames delivered", std::to_string(r.frames_delivered)});
        table.add_row({"missed asleep", std::to_string(r.medium_stats.missed_asleep)});
        table.add_row({"index migrations", std::to_string(r.index_stats.migrations)});
        table.add_row(
            {"index in-cell updates", std::to_string(r.index_stats.in_cell_updates)});
        table.add_row(
            {"index full refreshes", std::to_string(r.index_stats.full_refreshes)});
        table.add_row(
            {"flat-hash rebuilds", std::to_string(r.flat_index_stats.full_rebuilds)});
        table.print(std::cout);
    }
    // Machine-readable line for tools/check_scaling.py and the CI
    // scaling-curve artifact. One line, stable keys.
    std::cout << "swarm-json: {\"nodes\":" << r.nodes
              << ",\"area_side_m\":" << r.area_side_m
              << ",\"sim_s\":" << r.sim_seconds << ",\"wall_s\":" << wall_s
              << ",\"events\":" << r.executed_events
              << ",\"events_per_node\":" << events_per_node
              << ",\"frames_sent\":" << r.medium_stats.frames_sent
              << ",\"frames_delivered\":" << r.frames_delivered
              << ",\"index_migrations\":" << r.index_stats.migrations
              << ",\"index_full_refreshes\":" << r.index_stats.full_refreshes
              << ",\"flat_rebuilds\":" << r.flat_index_stats.full_rebuilds
              << "}\n";
}

/// Everything a finished single scenario run prints: summary table,
/// resilience, counters, kernel stats, the coarse error series and the CSV
/// dumps. Shared by the straight single-run path and --restore, so a
/// restored run's output can be diffed byte-for-byte against the straight
/// run's (the CI checkpoint-identity gate).
struct SingleRunOutput {
    bool quiet = false;
    std::string csv_prefix;
    double pos_trace_interval_s = 0.0;
    bool show_counters = false;
    bool show_kernel_stats = false;
};

int print_single_run(const core::ScenarioResult& result, core::Scenario& scenario,
                     const fault::FaultInjector* injector, double run_wall_seconds,
                     const SingleRunOutput& o) {
    metrics::Table summary({"metric", "value"});
    summary.add_row({"avg localization error (m)",
                     metrics::fmt(result.avg_error.stats().mean())});
    summary.add_row({"max avg error (m)", metrics::fmt(result.avg_error.stats().max())});
    summary.add_row({"fixes", std::to_string(result.agent_totals.fixes)});
    summary.add_row({"windows without fix",
                     std::to_string(result.agent_totals.windows_without_fix)});
    summary.add_row({"beacons sent", std::to_string(result.agent_totals.beacons_sent)});
    summary.add_row(
        {"beacons received", std::to_string(result.agent_totals.beacons_received)});
    summary.add_row({"SYNCs delivered",
                     std::to_string(result.agent_totals.syncs_received)});
    summary.add_row({"frames on air", std::to_string(result.medium_stats.frames_sent)});
    summary.add_row({"team energy (kJ)",
                     metrics::fmt(result.team_energy.total_mj() / 1e6)});
    summary.add_row({"  tx (kJ)", metrics::fmt(result.team_energy.tx_mj / 1e6)});
    summary.add_row({"  rx (kJ)", metrics::fmt(result.team_energy.rx_mj / 1e6)});
    summary.add_row({"  idle (kJ)", metrics::fmt(result.team_energy.idle_mj / 1e6)});
    summary.add_row({"  sleep (kJ)", metrics::fmt(result.team_energy.sleep_mj / 1e6)});
    summary.add_row({"events executed", std::to_string(result.executed_events)});
    summary.print(std::cout);

    if (injector != nullptr) {
        print_resilience(injector->report(result));
    }
    if (o.show_counters) {
        print_counters(result.counters);
    }
    if (o.show_kernel_stats) {
        print_kernel_stats(result.counters, result.executed_events, run_wall_seconds);
    }

    if (!o.quiet) {
        std::cout << "\nerror over time (60 s buckets):\n";
        metrics::Table series({"t (s)", "avg error (m)"});
        const metrics::TimeSeries coarse =
            result.avg_error.downsample(sim::Duration::seconds(60.0));
        for (const auto& s : coarse.samples()) {
            series.add_row(
                {metrics::fmt(s.time.to_seconds(), 0), metrics::fmt(s.value)});
        }
        series.print(std::cout);
    }

    if (!o.csv_prefix.empty()) {
        {
            std::ofstream out(o.csv_prefix + "_avg_error.csv");
            if (!out) return fail("cannot write " + o.csv_prefix + "_avg_error.csv");
            metrics::Table csv({"t_s", "avg_error_m"});
            for (const auto& s : result.avg_error.samples()) {
                csv.add_row(
                    {metrics::fmt(s.time.to_seconds(), 0), metrics::fmt(s.value, 4)});
            }
            csv.print_csv(out);
        }
        {
            std::ofstream out(o.csv_prefix + "_summary.csv");
            if (!out) return fail("cannot write " + o.csv_prefix + "_summary.csv");
            summary.print_csv(out);
        }
        if (o.pos_trace_interval_s > 0.0) {
            std::ofstream out(o.csv_prefix + "_trace.csv");
            if (!out) return fail("cannot write " + o.csv_prefix + "_trace.csv");
            scenario.write_position_trace_csv(out);
        }
        std::cout << "\nwrote " << o.csv_prefix << "_avg_error.csv and "
                  << o.csv_prefix << "_summary.csv"
                  << (o.pos_trace_interval_s > 0.0 ? " and the position trace" : "")
                  << "\n";
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    int robots = 50;
    int anchors = 25;
    std::uint64_t seed = 7;
    double duration_s = 1800.0;
    double period_s = 100.0;
    double window_s = 3.0;
    int beacons_k = 3;
    double vmax = 2.0;
    double area_m = 200.0;
    std::string mode = "cocoa";
    std::string sync = "mrmm";
    std::string technique = "bayes";
    std::string estimator = "grid";
    bool no_sleep = false;
    bool blind_beaconing = false;
    bool no_culling = false;
    bool quiet = false;
    std::string csv_prefix;
    double pos_trace_interval_s = 0.0;
    std::string trace_file;
    std::string trace_format = "chrome";
    bool show_counters = false;
    bool show_kernel_stats = false;
    bool profile = false;
    int reps = 1;
    int threads = 0;
    int grid_threads = 0;
    int swarm_threads = 0;
    int swarm_nodes = 0;
    std::string medium_backend;
    std::string fault_spec;
    std::string fault_file;
    double avail_threshold_m = 10.0;
    int resilience_sweep = -1;
    bool backend_sweep = false;
    double checkpoint_at_s = 0.0;
    std::string checkpoint_out;
    std::string restore_file;
    bool no_fork = false;
    bool no_fix_cpu = false;
    double fault_at_frac = 0.25;

    cli::ArgParser parser("cocoa_sim", "CoCoA mobile-robot localization simulator");
    parser.add_option("robots", "team size (default 50)", &robots)
        .add_option("anchors", "robots with localization devices (default 25)", &anchors)
        .add_option("seed", "master RNG seed (default 7)", &seed)
        .add_option("duration", "simulated seconds (default 1800)", &duration_s)
        .add_option("period", "beacon period T in seconds (default 100)", &period_s)
        .add_option("window", "transmit window t in seconds (default 3)", &window_s)
        .add_option("k", "beacons per window (default 3)", &beacons_k)
        .add_option("vmax", "maximum robot speed m/s (default 2)", &vmax)
        .add_option("area", "deployment area side in metres (default 200)", &area_m)
        .add_option("mode", "localization mode (default cocoa)", &mode,
                    {"cocoa", "rf", "odo"})
        .add_option("sync", "clock synchronization (default mrmm)", &sync,
                    {"mrmm", "perfect"})
        .add_option("technique", "RF fix technique (default bayes)", &technique,
                    {"bayes", "centroid", "ls"})
        .add_option("estimator",
                    "belief backend for --mode cocoa (default grid; see "
                    "docs/estimators.md)",
                    &estimator, {"grid", "ekf", "lincvx"})
        .add_flag("no-sleep", "disable sleep coordination (energy baseline)", &no_sleep)
        .add_flag("blind-beaconing", "localized blind robots also beacon", &blind_beaconing)
        .add_flag("no-culling",
                  "disable interference-radius culling in the medium "
                  "(output is bit-identical either way; this exists for perf "
                  "comparison and the CI exactness gate)",
                  &no_culling)
        .add_flag("quiet", "summary only, no time series", &quiet)
        .add_option("csv", "prefix for CSV dumps (avg error + summary)", &csv_prefix)
        .add_option("pos-trace",
                    "record true+estimated positions every N seconds into "
                    "<csv>_trace.csv (requires --csv)",
                    &pos_trace_interval_s)
        .add_option("trace",
                    "write a sim-time event trace to <file> (frame/beacon/fix "
                    "events; Chrome about:tracing format by default)",
                    &trace_file)
        .add_option("trace-format", "event-trace format (default chrome)",
                    &trace_format, {"chrome", "jsonl"})
        .add_flag("counters",
                  "print the counter registry summed over nodes (and over "
                  "replications with --reps)",
                  &show_counters)
        .add_flag("kernel-stats",
                  "print event-kernel throughput and allocation stats "
                  "(executed events, events/sec, SBO misses, pool hit rates)",
                  &show_kernel_stats)
        .add_flag("profile", "print wall-clock profiling scopes to stderr", &profile)
        .add_option("reps",
                    "independent replications; >1 runs the parallel engine "
                    "and prints mean/CI aggregates (default 1)",
                    &reps, 1, 1000000)
        .add_option("threads",
                    "worker threads for --reps; 0 = all hardware threads "
                    "(default 0)",
                    &threads, 0, 4096)
        .add_option("grid-threads",
                    "worker threads for batched window-end grid updates "
                    "inside a run; 0 = inline fixes, -1 = all hardware "
                    "threads. Output is byte-identical at any value "
                    "(default 0)",
                    &grid_threads, -1, 4096)
        .add_option("swarm-threads",
                    "worker threads for the swarm family's sharded mobility "
                    "tick (--nodes runs); 0 = inline, -1 = all hardware "
                    "threads. Output is byte-identical at any value "
                    "(default 0)",
                    &swarm_threads, -1, 4096)
        .add_option("nodes",
                    "run the large-N swarm family instead of the CoCoA "
                    "scenario: N duty-cycled beaconing radios at fig7 density "
                    "on a sqrt(N)-sized area (honours --seed, --duration, "
                    "--no-culling, --medium, --swarm-threads, --quiet; prints "
                    "a 'swarm-json:' line for the CI scaling job)",
                    &swarm_nodes, 0, 1000000)
        .add_option("medium",
                    "override the medium's spatial-index backend (default: "
                    "the build's — flat only with -DCOCOA_FLAT_MEDIUM=ON). "
                    "Output is bit-identical either way; this exists for the "
                    "CI oracle gate and perf comparison",
                    &medium_backend, {"hier", "flat"})
        .add_option("fault",
                    "inject faults: ';'-separated specs like "
                    "'crash@300:node=3;loss@600+60:p=0.5' (see docs/faults.md)",
                    &fault_spec)
        .add_option("fault-file",
                    "read fault specs from <file> (one per line, # comments)",
                    &fault_file)
        .add_option("avail-threshold",
                    "error bound in metres for the availability metric "
                    "(default 10)",
                    &avail_threshold_m)
        .add_option("resilience-sweep",
                    "crash 0..K anchors at 25% of the run and tabulate error/"
                    "availability per K (uses --reps/--threads)",
                    &resilience_sweep, 0, 1000)
        .add_flag("backend-sweep",
                  "run every estimator backend across the standard fault "
                  "plans (baseline, loss bursts, anchor crashes) and tabulate "
                  "accuracy/availability/per-fix CPU per cell; honours "
                  "--reps/--threads/--avail-threshold; prints one "
                  "'backend-json:' line per cell",
                  &backend_sweep)
        .add_option("checkpoint-at",
                    "snapshot the complete simulation state T simulated "
                    "seconds in (requires --checkpoint-out; single runs and "
                    "--nodes runs), then keep running to the end",
                    &checkpoint_at_s)
        .add_option("checkpoint-out",
                    "file the --checkpoint-at blob is written to",
                    &checkpoint_out)
        .add_option("restore",
                    "resume from a --checkpoint-out blob and run to the "
                    "blob's configured duration; scenario config and fault "
                    "plan come from the blob, output matches the straight "
                    "run byte for byte",
                    &restore_file)
        .add_flag("no-fork",
                  "disable forked sweep execution: every cell re-simulates "
                  "its warm prefix instead of restoring it from an in-memory "
                  "checkpoint (outputs are byte-identical either way; this "
                  "exists for the CI fork gate and timing comparisons)",
                  &no_fork)
        .add_option("fault-at-frac",
                    "backend-sweep fault strike time as a fraction of the "
                    "run (default 0.25)",
                    &fault_at_frac)
        .add_flag("no-fix-cpu",
                  "skip the backend sweep's wall-clock per-fix CPU "
                  "measurement, leaving only deterministic columns (CI "
                  "identity diffs)",
                  &no_fix_cpu);
    if (!parser.parse(argc, argv, std::cout, std::cerr)) {
        return parser.failed() ? 2 : 0;
    }

    if (checkpoint_at_s < 0.0) {
        return fail("--checkpoint-at must be positive");
    }
    if ((checkpoint_at_s > 0.0) != !checkpoint_out.empty()) {
        return fail("--checkpoint-at and --checkpoint-out go together");
    }
    if (checkpoint_at_s > 0.0 &&
        (reps > 1 || backend_sweep || resilience_sweep >= 0)) {
        return fail("--checkpoint-at works on single runs (and --nodes runs) only");
    }
    if (!restore_file.empty()) {
        if (reps > 1 || backend_sweep || resilience_sweep >= 0 || swarm_nodes > 0 ||
            !fault_spec.empty() || !fault_file.empty() || checkpoint_at_s > 0.0) {
            return fail("--restore resumes one blob to completion; drop the "
                        "run-shape flags (--reps, --fault*, --nodes, sweeps, "
                        "--checkpoint-at)");
        }
        if (profile) {
            obs::Profiler::set_enabled(true);
        }
        try {
            const std::string blob = sim::ckpt::read_blob_file(restore_file);
            sim::ckpt::Reader probe(blob);
            if (sim::ckpt::read_header(probe) == sim::ckpt::Flavor::kSwarm) {
                const std::unique_ptr<core::Swarm> swarm =
                    exp::restore_swarm_checkpoint(blob);
                const auto t0 = std::chrono::steady_clock::now();
                swarm->run();
                const double wall_s = std::chrono::duration<double>(
                                          std::chrono::steady_clock::now() - t0)
                                          .count();
                print_swarm(swarm->result(), wall_s, quiet);
            } else {
                exp::RestoredScenario restored =
                    exp::restore_scenario_checkpoint(blob);
                const auto t0 = std::chrono::steady_clock::now();
                restored.scenario->run();
                const double wall_s = std::chrono::duration<double>(
                                          std::chrono::steady_clock::now() - t0)
                                          .count();
                const core::ScenarioResult result = restored.scenario->result();
                SingleRunOutput out;
                out.quiet = quiet;
                out.csv_prefix = csv_prefix;
                out.pos_trace_interval_s = pos_trace_interval_s;
                out.show_counters = show_counters;
                out.show_kernel_stats = show_kernel_stats;
                const int rc = print_single_run(result, *restored.scenario,
                                                restored.injector.get(), wall_s, out);
                if (rc != 0) return rc;
            }
        } catch (const std::exception& e) {
            return fail(e.what());
        }
        if (profile) {
            obs::Profiler::instance().report(std::cerr);
        }
        return 0;
    }

    core::ScenarioConfig config;
    config.seed = seed;
    config.num_robots = robots;
    config.num_anchors = anchors;
    config.duration = sim::Duration::seconds(duration_s);
    config.period = sim::Duration::seconds(period_s);
    config.window = sim::Duration::seconds(window_s);
    config.beacons_per_window = beacons_k;
    config.max_speed = vmax;
    config.area_side_m = area_m;
    config.sleep_coordination = !no_sleep;
    config.blind_beaconing = blind_beaconing;
    config.grid_update_threads = grid_threads;
    config.medium.interference_culling = !no_culling;
    if (!medium_backend.empty()) {
        // Parser-validated choice: hier | flat.
        config.medium.index = medium_backend == "hier" ? mac::MediumIndex::Hierarchical
                                                       : mac::MediumIndex::FlatHash;
    }

    if (swarm_nodes > 0) {
        core::SwarmConfig sc;
        sc.nodes = swarm_nodes;
        sc.seed = seed;
        sc.duration = sim::Duration::seconds(duration_s);
        sc.medium = config.medium;
        sc.mobility_threads = swarm_threads;
        core::SwarmResult r;
        const auto t0 = std::chrono::steady_clock::now();
        try {
            core::Swarm swarm(sc);
            if (checkpoint_at_s > 0.0) {
                swarm.run_until(sim::TimePoint::origin() +
                                sim::Duration::seconds(checkpoint_at_s));
                const std::string blob = exp::save_swarm_checkpoint(swarm);
                sim::ckpt::write_blob_file(checkpoint_out, blob);
                std::cout << "wrote checkpoint (" << blob.size() << " bytes) to "
                          << checkpoint_out << "\n";
            }
            swarm.run();
            r = swarm.result();
        } catch (const std::exception& e) {
            return fail(e.what());
        }
        const double wall_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count();
        print_swarm(r, wall_s, quiet);
        return 0;
    }

    // All enum-valued flags are parser-validated choices; only the mapping
    // remains here.
    config.mode = mode == "cocoa"  ? core::LocalizationMode::Combined
                  : mode == "rf"   ? core::LocalizationMode::RfOnly
                                   : core::LocalizationMode::OdometryOnly;
    config.sync = sync == "mrmm" ? core::SyncMode::Mrmm : core::SyncMode::PerfectClock;
    config.technique = technique == "bayes"      ? core::RfTechnique::BayesianGrid
                       : technique == "centroid" ? core::RfTechnique::WeightedCentroid
                                                 : core::RfTechnique::LeastSquares;
    config.estimator = *est::parse_backend(estimator);
    if (config.estimator != est::Backend::Grid && mode != "cocoa") {
        return fail("--estimator " + estimator + " requires --mode cocoa");
    }

    fault::FaultPlan plan;
    try {
        if (!fault_file.empty()) {
            plan = fault::FaultPlan::parse_file(fault_file);
        }
        if (!fault_spec.empty()) {
            fault::FaultPlan from_spec = fault::FaultPlan::parse(fault_spec);
            plan.events.insert(plan.events.end(), from_spec.events.begin(),
                               from_spec.events.end());
        }
        plan.avail_threshold_m = avail_threshold_m;
        plan.validate();
    } catch (const std::exception& e) {
        return fail(e.what());
    }
    if (resilience_sweep >= 0 && !plan.empty()) {
        return fail("--resilience-sweep builds its own plans; drop --fault/--fault-file");
    }
    if (resilience_sweep > anchors) {
        return fail("--resilience-sweep cannot crash more anchors than --anchors");
    }
    if (backend_sweep && (!plan.empty() || resilience_sweep >= 0)) {
        return fail("--backend-sweep builds its own plans; drop "
                    "--fault/--fault-file/--resilience-sweep");
    }
    if (backend_sweep && mode != "cocoa") {
        return fail("--backend-sweep requires --mode cocoa");
    }

    if (pos_trace_interval_s > 0.0 && csv_prefix.empty()) {
        return fail("--pos-trace requires --csv <prefix>");
    }
    if (pos_trace_interval_s > 0.0 && reps > 1) {
        return fail("--pos-trace requires --reps 1 (one scenario to trace)");
    }
    if (!trace_file.empty() && reps > 1) {
        return fail("--trace requires --reps 1 (one scenario to trace)");
    }
    obs::TraceSink::Format event_trace_format = obs::TraceSink::Format::ChromeTrace;
    if (trace_format == "jsonl") {
        event_trace_format = obs::TraceSink::Format::Jsonl;
    } else if (trace_format != "chrome") {
        return fail("unknown --trace-format '" + trace_format + "' (chrome | jsonl)");
    }
    if (profile) {
        obs::Profiler::set_enabled(true);
    }

    if (backend_sweep) {
        exp::BackendSweepOptions opt;
        opt.n_reps = reps;
        opt.n_threads = threads;
        opt.avail_threshold_m = avail_threshold_m;
        opt.fault_at_frac = fault_at_frac;
        opt.fork = !no_fork;
        opt.measure_cpu = !no_fix_cpu;
        // Keep the crash axis inside the scenario's anchor budget.
        std::erase_if(opt.crashed_anchors, [&](int k) { return k > anchors; });
        std::vector<exp::BackendCell> cells;
        try {
            config.validate();
            cells = exp::run_backend_sweep(config, opt);
        } catch (const std::exception& e) {
            return fail(e.what());
        }

        metrics::Table table({"backend", "plan", "steady err (m)", "avail",
                              "avail during", "reacquire (s)", "fixes",
                              "fix cpu (us)"});
        for (const exp::BackendCell& cell : cells) {
            table.add_row({est::to_string(cell.backend), cell.plan,
                           metrics::fmt(cell.steady_error_m),
                           cell.has_resilience ? metrics::fmt(cell.availability) : "-",
                           cell.has_resilience && cell.avail_during > 0.0
                               ? metrics::fmt(cell.avail_during)
                               : "-",
                           cell.has_resilience && cell.reacquire_s > 0.0
                               ? metrics::fmt(cell.reacquire_s)
                               : "-",
                           std::to_string(cell.fixes),
                           metrics::fmt(cell.fix_cpu_ns / 1000.0)});
        }
        std::cout << "backend sweep: " << reps
                  << " reps per cell, availability threshold " << avail_threshold_m
                  << " m\n";
        table.print(std::cout);
        // One machine-readable record per cell for scripts/CI artifacts.
        for (const exp::BackendCell& cell : cells) {
            std::cout << "backend-json: " << cell.json() << "\n";
        }
        if (!csv_prefix.empty()) {
            std::ofstream out(csv_prefix + "_backends.csv");
            if (!out) return fail("cannot write " + csv_prefix + "_backends.csv");
            table.print_csv(out);
            std::cout << "wrote " << csv_prefix << "_backends.csv\n";
        }
        if (profile) {
            obs::Profiler::instance().report(std::cerr);
        }
        return 0;
    }

    if (resilience_sweep >= 0) {
        // Crash k = 0..K of the anchors (highest ids first) at a fraction of
        // the run; same seeds per k, so rows differ only by injected faults.
        exp::ReplicationOptions opt;
        opt.n_reps = reps;
        opt.n_threads = threads;
        opt.fork = !no_fork;
        const sim::TimePoint strike =
            sim::TimePoint::origin() +
            sim::Duration::seconds(duration_s * fault_at_frac);
        std::vector<core::ScenarioConfig> configs;
        std::vector<fault::FaultPlan> plans;
        for (int k = 0; k <= resilience_sweep; ++k) {
            configs.push_back(config);
            fault::FaultPlan p = fault::anchor_crash_plan(anchors, k, strike);
            p.avail_threshold_m = avail_threshold_m;
            plans.push_back(std::move(p));
        }
        std::vector<exp::ReplicationSet> sets;
        try {
            config.validate();
            sets = exp::run_sweep(configs, plans, opt);
        } catch (const std::exception& e) {
            return fail(e.what());
        }

        metrics::Table table({"crashed anchors", "steady err (m)", "avail",
                              "avail during", "reacquire (s)"});
        for (int k = 0; k <= resilience_sweep; ++k) {
            const exp::ReplicationSet& set = sets[static_cast<std::size_t>(k)];
            table.add_row(
                {std::to_string(k), set.steady_ci(),
                 set.has_resilience ? metrics::fmt(set.availability.mean()) : "-",
                 set.avail_during.count() > 0 ? metrics::fmt(set.avail_during.mean())
                                              : "-",
                 set.reacquire_s.count() > 0 ? metrics::fmt(set.reacquire_s.mean())
                                             : "-"});
        }
        std::cout << "resilience sweep: " << reps << " reps per point, anchors"
                  << " crashed at t=" << duration_s * fault_at_frac
                  << " s, availability"
                  << " threshold " << avail_threshold_m << " m\n";
        table.print(std::cout);
        if (!csv_prefix.empty()) {
            std::ofstream out(csv_prefix + "_resilience.csv");
            if (!out) return fail("cannot write " + csv_prefix + "_resilience.csv");
            table.print_csv(out);
            std::cout << "wrote " << csv_prefix << "_resilience.csv\n";
        }
        if (profile) {
            obs::Profiler::instance().report(std::cerr);
        }
        return 0;
    }

    if (reps > 1) {
        exp::ReplicationOptions opt;
        opt.n_reps = reps;
        opt.n_threads = threads;
        opt.fork = !no_fork;
        exp::ReplicationSet set;
        try {
            config.validate();
            set = exp::run_replications(config, plan, opt);
        } catch (const std::exception& e) {
            return fail(e.what());
        }

        if (!quiet) {
            metrics::Table per_rep({"rep", "seed", "avg err (m)", "steady err (m)",
                                    "energy (kJ)", "wall (s)"});
            for (const exp::ReplicationRecord& r : set.records) {
                per_rep.add_row({std::to_string(r.index), std::to_string(r.seed),
                                 metrics::fmt(r.avg_error_m),
                                 metrics::fmt(r.steady_error_m),
                                 metrics::fmt(r.total_energy_kj),
                                 metrics::fmt(r.wall_seconds)});
            }
            per_rep.print(std::cout);
            std::cout << "\n";
        }

        metrics::Table aggregate(
            {"metric", "mean", "stddev", "95% CI ±", "min", "max"});
        const auto stat_row = [&aggregate](const std::string& name,
                                           const metrics::RunningStat& s) {
            aggregate.add_row({name, metrics::fmt(s.mean()), metrics::fmt(s.stddev()),
                               metrics::fmt(metrics::ci95_halfwidth(s)),
                               metrics::fmt(s.min()), metrics::fmt(s.max())});
        };
        stat_row("avg localization error (m)", set.avg_error);
        stat_row("steady-state error (m)", set.steady_error);
        stat_row("team energy (kJ)", set.total_energy_kj);
        if (set.has_resilience) {
            stat_row("availability", set.availability);
            if (set.avail_during.count() > 0) {
                stat_row("availability during faults", set.avail_during);
            }
            if (set.reacquire_s.count() > 0) {
                stat_row("time to reacquire (s)", set.reacquire_s);
            }
        }
        aggregate.print(std::cout);

        if (show_counters) {
            // counter_totals is folded in replication-index order, so this
            // table is byte-identical for any --threads value.
            print_counters({set.counter_totals.begin(), set.counter_totals.end()});
        }
        if (show_kernel_stats) {
            // executed_events_total and the counters are deterministic; only
            // the events/sec rate depends on measured wall time.
            print_kernel_stats({set.counter_totals.begin(), set.counter_totals.end()},
                               set.executed_events_total, set.total_wall_seconds);
        }
        std::cout << "\n" << reps << " replications, "
                  << set.total_wall_seconds << " s of simulation work\n";

        if (!csv_prefix.empty()) {
            std::ofstream out(csv_prefix + "_aggregate.csv");
            if (!out) return fail("cannot write " + csv_prefix + "_aggregate.csv");
            aggregate.print_csv(out);
            std::cout << "wrote " << csv_prefix << "_aggregate.csv\n";
        }
        if (profile) {
            obs::Profiler::instance().report(std::cerr);
        }
        return 0;
    }

    core::ScenarioResult result;
    std::optional<core::Scenario> scenario;
    std::optional<fault::FaultInjector> injector;
    double run_wall_seconds = 0.0;
    try {
        config.validate();
        scenario.emplace(config);
        if (!plan.empty()) {
            injector.emplace(*scenario, plan);
            injector->arm();
            if (!quiet) {
                std::cout << "fault plan:\n" << plan.summary();
            }
        }
        if (pos_trace_interval_s > 0.0) {
            scenario->enable_position_trace(
                sim::Duration::seconds(pos_trace_interval_s));
        }
        if (!trace_file.empty()) {
            scenario->obs().trace.open_file(trace_file, event_trace_format);
        }
        const auto run_t0 = std::chrono::steady_clock::now();
        if (checkpoint_at_s > 0.0) {
            scenario->run_until(sim::TimePoint::origin() +
                                sim::Duration::seconds(checkpoint_at_s));
            const std::string blob = exp::save_scenario_checkpoint(
                *scenario, injector ? &*injector : nullptr);
            sim::ckpt::write_blob_file(checkpoint_out, blob);
            std::cout << "wrote checkpoint (" << blob.size() << " bytes) to "
                      << checkpoint_out << "\n";
        }
        scenario->run();
        run_wall_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - run_t0)
                               .count();
        result = scenario->result();
        if (!trace_file.empty()) {
            const std::uint64_t events = scenario->obs().trace.events_emitted();
            scenario->obs().trace.close();
            std::cout << "wrote " << events << " trace events to " << trace_file
                      << "\n";
        }
    } catch (const std::exception& e) {
        return fail(e.what());
    }

    const SingleRunOutput out_opts{quiet, csv_prefix, pos_trace_interval_s,
                                   show_counters, show_kernel_stats};
    const int rc = print_single_run(result, *scenario,
                                    injector ? &*injector : nullptr,
                                    run_wall_seconds, out_opts);
    if (rc != 0) return rc;
    if (profile) {
        obs::Profiler::instance().report(std::cerr);
    }
    return 0;
}
