#!/usr/bin/env python3
"""Perf-regression gate: diff a fresh BENCH_10.json against the committed
baseline (bench/baseline/BENCH_baseline.json).

CI boxes and developer machines run at wildly different speeds, so raw ns/op
is never compared directly. Instead every benchmark's fresh/baseline ratio is
normalized by the *median* ratio across the whole suite — uniform machine
speed cancels out, and only benchmarks that moved relative to their peers
remain. The gate is deliberately generous (default: fail only when a
benchmark got more than 2x slower after normalization); it exists to catch
accidental algorithmic regressions, not nanosecond drift.

Usage: perf_compare.py BASELINE FRESH [--tolerance 2.0]
Exit status: 0 = within tolerance, 1 = regression, 2 = bad input.
"""

import argparse
import json
import statistics
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"perf_compare: cannot read {path}: {e}")
    if doc.get("schema") != "cocoa-perf-1":
        sys.exit(f"perf_compare: {path}: unexpected schema {doc.get('schema')!r}")
    series = {}
    for entry in doc.get("benchmarks", []):
        series[entry["name"]] = float(entry["ns_per_op"])
    for entry in doc.get("scenarios", []):
        # Scenario wall times ride through the same normalization; seconds vs
        # nanoseconds is irrelevant because only ratios are compared.
        series["scenario:" + entry["name"]] = float(entry["wall_seconds"])
    return series


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--tolerance", type=float, default=2.0,
                        help="fail when normalized slowdown exceeds this "
                             "factor (default: %(default)s)")
    args = parser.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)

    common = sorted(set(base) & set(fresh))
    if len(common) < 3:
        sys.exit(f"perf_compare: only {len(common)} comparable entries "
                 f"between {args.baseline} and {args.fresh}")
    for name in sorted(set(base) - set(fresh)):
        print(f"  note: in baseline only (renamed/removed?): {name}")
    for name in sorted(set(fresh) - set(base)):
        print(f"  note: new, no baseline yet: {name}")

    # A zero (or negative) baseline has no meaningful ratio — it usually means
    # a truncated or hand-edited baseline file. Skip such entries loudly
    # instead of dividing by zero or KeyError-ing in the loop below.
    for name in (n for n in common if base[n] <= 0.0):
        print(f"  note: baseline value is {base[name]} (not positive), "
              f"skipped: {name}")
    ratios = {n: fresh[n] / base[n] for n in common if base[n] > 0.0}
    if len(ratios) < 3:
        sys.exit(f"perf_compare: only {len(ratios)} usable ratio(s) after "
                 f"skipping non-positive baselines — too few to normalize. "
                 f"Regenerate the baseline:\n"
                 f"  COCOA_BENCH_JSON=bench/baseline/BENCH_baseline.json "
                 f"./build/bench/micro_core")
    median = statistics.median(ratios.values())
    print(f"median fresh/baseline ratio (machine-speed normalizer): "
          f"{median:.3f}")

    regressions = []
    names = sorted(ratios)
    width = max(len(n) for n in names)
    for name in names:
        norm = ratios[name] / median
        flag = ""
        if norm > args.tolerance:
            flag = "  << REGRESSION"
            regressions.append((name, norm))
        elif norm < 1.0 / args.tolerance:
            flag = "  (improved)"
        print(f"  {name:<{width}}  {base[name]:>12.1f} -> {fresh[name]:>12.1f}"
              f"  norm x{norm:.2f}{flag}")

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed beyond "
              f"{args.tolerance:.1f}x after machine-speed normalization:")
        for name, norm in regressions:
            print(f"  {name}: x{norm:.2f}")
        print("If the slowdown is intended, regenerate the baseline:\n"
              "  COCOA_BENCH_JSON=bench/baseline/BENCH_baseline.json "
              "./build/bench/micro_core")
        return 1
    print(f"\nall {len(ratios)} entries within {args.tolerance:.1f}x "
          f"of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
