#!/usr/bin/env python3
"""Unit tests for perf_compare.py (run via ctest as perf_compare_unit).

perf_compare is the CI perf gate; a crash in the gate script reads as a perf
regression and blocks unrelated PRs, so its failure modes are pinned here:
zero-valued baseline entries must be skipped with a note (not divide or
KeyError), and a baseline with too few usable entries must exit with an
actionable message instead of a traceback.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOL = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    "perf_compare.py")


def doc(benchmarks, scenarios=()):
    return {
        "schema": "cocoa-perf-1",
        "benchmarks": [{"name": n, "ns_per_op": v} for n, v in benchmarks],
        "scenarios": [{"name": n, "wall_seconds": v} for n, v in scenarios],
    }


class PerfCompareTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def write(self, name, content):
        path = os.path.join(self.dir.name, name)
        with open(path, "w") as f:
            json.dump(content, f)
        return path

    def run_tool(self, baseline, fresh, *extra):
        return subprocess.run(
            [sys.executable, TOOL, baseline, fresh, *extra],
            capture_output=True, text=True)

    def test_clean_pass(self):
        entries = [("BM_A", 100.0), ("BM_B", 200.0), ("BM_C", 50.0)]
        base = self.write("base.json", doc(entries))
        fresh = self.write("fresh.json", doc(entries))
        result = self.run_tool(base, fresh)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("all 3 entries within", result.stdout)

    def test_regression_detected(self):
        base = self.write("base.json", doc(
            [("BM_A", 100.0), ("BM_B", 200.0), ("BM_C", 50.0)]))
        fresh = self.write("fresh.json", doc(
            [("BM_A", 100.0), ("BM_B", 200.0), ("BM_C", 500.0)]))
        result = self.run_tool(base, fresh)
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("REGRESSION", result.stdout)
        self.assertIn("BM_C", result.stdout)

    def test_zero_baseline_entry_skipped_not_crash(self):
        # A zero ns_per_op in the baseline used to KeyError inside the report
        # loop (the entry was dropped from the ratio map but still iterated).
        base = self.write("base.json", doc(
            [("BM_A", 100.0), ("BM_B", 0.0), ("BM_C", 50.0), ("BM_D", 75.0)]))
        fresh = self.write("fresh.json", doc(
            [("BM_A", 100.0), ("BM_B", 10.0), ("BM_C", 50.0), ("BM_D", 75.0)]))
        result = self.run_tool(base, fresh)
        self.assertEqual(result.returncode, 0,
                         result.stdout + result.stderr)
        self.assertNotIn("Traceback", result.stderr)
        self.assertIn("skipped: BM_B", result.stdout)
        self.assertIn("all 3 entries within", result.stdout)

    def test_all_zero_baseline_exits_with_guidance(self):
        # All-zero baseline: no usable ratios. Must exit 2-ish with the
        # regenerate hint, not a StatisticsError traceback.
        base = self.write("base.json", doc(
            [("BM_A", 0.0), ("BM_B", 0.0), ("BM_C", 0.0)]))
        fresh = self.write("fresh.json", doc(
            [("BM_A", 1.0), ("BM_B", 1.0), ("BM_C", 1.0)]))
        result = self.run_tool(base, fresh)
        self.assertNotEqual(result.returncode, 0)
        self.assertNotIn("Traceback", result.stderr)
        self.assertIn("usable ratio", result.stderr)
        self.assertIn("COCOA_BENCH_JSON", result.stderr)

    def test_too_few_common_entries(self):
        base = self.write("base.json", doc([("BM_A", 100.0)]))
        fresh = self.write("fresh.json", doc([("BM_A", 100.0)]))
        result = self.run_tool(base, fresh)
        self.assertNotEqual(result.returncode, 0)
        self.assertNotIn("Traceback", result.stderr)
        self.assertIn("comparable entries", result.stderr)

    def test_scenarios_ride_through(self):
        base = self.write("base.json", doc(
            [("BM_A", 100.0), ("BM_B", 200.0)], [("fig7", 2.0)]))
        fresh = self.write("fresh.json", doc(
            [("BM_A", 100.0), ("BM_B", 200.0)], [("fig7", 2.0)]))
        result = self.run_tool(base, fresh)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("scenario:fig7", result.stdout)

    def test_bad_schema_rejected(self):
        base = self.write("base.json", {"schema": "other", "benchmarks": []})
        fresh = self.write("fresh.json", doc([("BM_A", 1.0)]))
        result = self.run_tool(base, fresh)
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("unexpected schema", result.stderr)


if __name__ == "__main__":
    unittest.main()
