#!/usr/bin/env python3
"""Scaling-curve gate for the large-N swarm family (`cocoa_sim --nodes`).

Feeds on the `swarm-json: {...}` line the tool prints per run. Given runs at
increasing node counts (same duration/seed), asserts that

  1. wall time grows sub-quadratically: the fitted log-log exponent between
     the smallest and largest run stays below --max-exponent (default 1.7 —
     a flat-sweep medium is ~2.0, the hierarchical one ~1.2 with constant
     density);
  2. kernel events per node stay bounded: the max/min ratio across runs is
     at most --max-events-ratio (default 3.0), i.e. per-node work does not
     grow with swarm size.

Usage: check_scaling.py FILE...   (each file holds one or more swarm-json
lines; '-' reads stdin). Also writes a merged JSON array to --out if given.
Exit status: 0 = scaling OK, 1 = violation, 2 = bad input.
"""

import argparse
import json
import math
import sys


def parse_runs(paths):
    runs = []
    for path in paths:
        f = sys.stdin if path == "-" else open(path)
        with f:
            for line in f:
                line = line.strip()
                if line.startswith("swarm-json:"):
                    runs.append(json.loads(line[len("swarm-json:"):]))
    return runs


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+")
    parser.add_argument("--max-exponent", type=float, default=1.7)
    parser.add_argument("--max-events-ratio", type=float, default=3.0)
    parser.add_argument("--out", help="write merged run array as JSON")
    args = parser.parse_args()

    try:
        runs = parse_runs(args.files)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"check_scaling: {e}")
    runs.sort(key=lambda r: r["nodes"])
    if args.out:
        with open(args.out, "w") as f:
            json.dump(runs, f, indent=2)
            f.write("\n")
    if len(runs) < 2:
        sys.exit(f"check_scaling: need at least 2 runs, got {len(runs)}")

    print(f"{'nodes':>8} {'wall_s':>9} {'events':>12} {'events/node':>12}")
    for r in runs:
        print(f"{r['nodes']:>8} {r['wall_s']:>9.2f} {r['events']:>12} "
              f"{r['events_per_node']:>12.1f}")

    ok = True

    # Sub-quadratic growth, judged on the full span (single pairs are noisy
    # on shared CI boxes; the end-to-end exponent is the stable signal).
    lo, hi = runs[0], runs[-1]
    if hi["nodes"] <= lo["nodes"]:
        sys.exit("check_scaling: runs must cover distinct node counts")
    # Sub-millisecond walls are all noise; floor them rather than divide.
    wall_lo = max(lo["wall_s"], 1e-3)
    wall_hi = max(hi["wall_s"], 1e-3)
    exponent = math.log(wall_hi / wall_lo) / math.log(hi["nodes"] / lo["nodes"])
    print(f"\nwall-time exponent over {lo['nodes']} -> {hi['nodes']} nodes: "
          f"{exponent:.2f} (limit {args.max_exponent:.2f})")
    if exponent > args.max_exponent:
        print("  << FAIL: super-linear blowup — the medium is no longer "
              "O(neighbors) per transmission")
        ok = False

    per_node = [r["events_per_node"] for r in runs]
    ratio = max(per_node) / max(min(per_node), 1e-9)
    print(f"events/node spread (max/min): x{ratio:.2f} "
          f"(limit x{args.max_events_ratio:.2f})")
    if ratio > args.max_events_ratio:
        print("  << FAIL: per-node event count grows with swarm size")
        ok = False

    print("\nscaling OK" if ok else "\nscaling gate FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
